"""Tests for the streaming sliding-window subsystem (:mod:`repro.streaming`)."""

import numpy as np
import pytest

from repro.experiments import load_artifact, run_experiment
from repro.experiments.cli import main as cli_main
from repro.lcs.dp_baseline import lcs_length_dp
from repro.lis import lis_length, rank_transform, value_interval_matrix
from repro.streaming import (
    SeaweedAggregator,
    StreamingLCS,
    StreamingLIS,
    block_product_from_semilocal,
    build_block_product,
    combine_block_products,
    cover_scores,
    extend_value_matrix,
)
from repro.streaming.aggregator import NodeStore, empty_block_product
from repro.workloads import make_sequence, make_string_pair

BACKENDS = ("serial", "thread", "process")


def _oracle_rank_scores(window, x, y, strict):
    """Patience-sort DP oracle for value-interval scores."""
    ranks = rank_transform(np.asarray(window), strict=strict)
    return np.asarray(
        [lis_length(ranks[(ranks >= xi) & (ranks < yi)].tolist()) for xi, yi in zip(x, y)],
        dtype=np.int64,
    )


# ------------------------------------------------------------- block products
class TestBlockProducts:
    def test_build_matches_value_interval_matrix(self):
        rng = np.random.default_rng(0)
        for strict in (True, False):
            values = rng.integers(0, 10, size=40).astype(float)
            arrivals = np.arange(40, dtype=np.int64)
            ties = -arrivals if strict else arrivals
            block = build_block_product(values, ties)
            oracle = value_interval_matrix(values, strict=strict)
            assert block.matrix == oracle.matrix
            assert block.size == 40

    def test_combine_is_the_associative_product(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 50, size=120).astype(float)
        arrivals = np.arange(120, dtype=np.int64)
        left = build_block_product(values[:70], -arrivals[:70])
        right = build_block_product(values[70:], -arrivals[70:])
        merged = combine_block_products(left, right)
        assert merged.matrix == value_interval_matrix(values).matrix

    def test_combine_with_identity_is_a_noop(self):
        block = build_block_product(np.asarray([3.0, 1.0, 2.0]), -np.arange(3))
        assert combine_block_products(empty_block_product(), block) is block
        assert combine_block_products(block, empty_block_product()) is block

    def test_cover_scores_equal_root_scores(self):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 30, size=90).astype(float)
        arrivals = np.arange(90, dtype=np.int64)
        parts = [
            build_block_product(values[lo:hi], -arrivals[lo:hi])
            for lo, hi in ((0, 25), (25, 40), (40, 90))
        ]
        oracle = value_interval_matrix(values)
        for x in (0, 7, 41):
            y = np.arange(x, 91)
            assert np.array_equal(cover_scores(parts, x, y), oracle.score(np.full(len(y), x), y))


# ----------------------------------------------------------------- aggregator
class TestSeaweedAggregator:
    @pytest.mark.parametrize("strict", [True, False])
    def test_random_tick_sequences_match_oracles(self, strict):
        rng = np.random.default_rng(3 if strict else 4)
        agg = SeaweedAggregator(strict=strict, leaf_size=8)
        window = []
        for _ in range(45):
            op = rng.integers(0, 4)
            if op <= 1 or not window:
                count = int(rng.integers(1, 10))
                vals = rng.integers(0, 15, size=count).astype(float)
                agg.append(vals)
                window.extend(vals.tolist())
            elif op == 2:
                count = int(rng.integers(1, len(window) + 1))
                assert agg.evict(count) == count
                window = window[count:]
            else:
                pos = int(rng.integers(0, len(window)))
                value = float(rng.integers(0, 15))
                agg.update(pos, value)
                window[pos] = value
            assert np.array_equal(agg.window_values(), np.asarray(window))
            assert agg.lis_length() == lis_length(window, strict=strict)
            if window:
                m = len(window)
                x = rng.integers(0, m + 1, size=4)
                y = np.minimum(m, x + rng.integers(0, m + 1, size=4))
                assert np.array_equal(
                    agg.rank_scores(x, y), _oracle_rank_scores(window, x, y, strict)
                )

    @pytest.mark.parametrize("strict", [True, False])
    def test_root_product_is_bit_identical_to_rebuild(self, strict):
        rng = np.random.default_rng(5)
        agg = SeaweedAggregator(strict=strict, leaf_size=16)
        stream = rng.integers(0, 40, size=400).astype(float)
        agg.append(stream[:160])
        for tick in range(12):
            agg.append(stream[160 + tick * 20 : 180 + tick * 20])
            agg.evict(20)
            oracle = value_interval_matrix(agg.window_values(), strict=strict)
            assert agg.to_semilocal().matrix == oracle.matrix

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_are_bit_identical(self, backend):
        rng = np.random.default_rng(6)
        stream = rng.integers(0, 60, size=320).astype(float)
        agg = SeaweedAggregator(leaf_size=16, backend=backend)
        agg.append(stream[:128])
        answers = []
        for tick in range(6):
            agg.append(stream[128 + tick * 32 : 160 + tick * 32])
            agg.evict(32)
            answers.append(agg.lis_length())
        reference = SeaweedAggregator(leaf_size=16, backend="serial")
        reference.append(stream[:128])
        expected = []
        for tick in range(6):
            reference.append(stream[128 + tick * 32 : 160 + tick * 32])
            reference.evict(32)
            expected.append(reference.lis_length())
        assert answers == expected
        assert agg.to_semilocal().matrix == reference.to_semilocal().matrix

    def test_thread_parallel_leaf_builds_match_serial(self):
        # A single large append carries enough weight for the thread
        # backend's map to genuinely engage (item weight = element count);
        # products and the merged multiply counters must match serial.
        rng = np.random.default_rng(60)
        stream = rng.integers(0, 5000, size=4800).astype(float)
        outcomes = {}
        for backend in ("serial", "thread"):
            # leaf_size above the dense threshold so leaf builds themselves
            # perform (and count) multiplications inside the mapped tasks.
            agg = SeaweedAggregator(leaf_size=200, backend=backend)
            agg.append(stream)
            outcomes[backend] = (
                agg.to_semilocal().matrix,
                agg.stats.blocks_built,
                agg.stats.multiplies,
            )
        assert outcomes["thread"][0] == outcomes["serial"][0]
        assert outcomes["thread"][1:] == outcomes["serial"][1:]
        assert outcomes["serial"][2] > 0, "leaf builds must have counted multiplies"

    def test_substring_scores_match_patience(self):
        rng = np.random.default_rng(7)
        agg = SeaweedAggregator(leaf_size=8)
        stream = rng.integers(0, 25, size=150).astype(float)
        agg.append(stream[:100])
        agg.append(stream[100:])
        agg.evict(30)
        window = agg.window_values()
        i = rng.integers(0, len(window), size=6)
        j = np.minimum(len(window), i + rng.integers(0, len(window), size=6))
        got = agg.substring_scores(i, j)
        want = [lis_length(window[lo:hi].tolist()) for lo, hi in zip(i, j)]
        assert np.array_equal(got, np.asarray(want))

    def test_window_sweep_matches_rebuilt_matrix(self):
        rng = np.random.default_rng(8)
        agg = SeaweedAggregator(leaf_size=16)
        agg.append(rng.integers(0, 99, size=120).astype(float))
        agg.evict(13)
        oracle = value_interval_matrix(agg.window_values())
        starts = np.arange(0, len(agg) - 24 + 1, 6)
        assert np.array_equal(agg.window_sweep(24, 6), oracle.score(starts, starts + 24))

    def test_update_recombines_only_the_root_path(self):
        agg = SeaweedAggregator(leaf_size=8)
        agg.append(np.arange(64, dtype=float))
        agg.lis_length()  # populate the node path
        before = agg.stats.multiplies
        agg.update(20, -3.0)
        assert agg.lis_length() == 63
        path_multiplies = agg.stats.multiplies - before
        assert 0 < path_multiplies <= 8, "update must recombine at most the root path"

    def test_empty_and_degenerate_windows(self):
        agg = SeaweedAggregator()
        assert agg.lis_length() == 0 and len(agg) == 0
        assert agg.evict(5) == 0
        agg.append([])
        agg.append([4.0])
        assert agg.lis_length() == 1
        with pytest.raises(IndexError):
            agg.update(1, 0.0)
        with pytest.raises(ValueError):
            agg.evict(-1)

    def test_node_store_accounting(self):
        store = NodeStore()
        block = build_block_product(np.asarray([2.0, 1.0, 3.0]), -np.arange(3))
        store.put((0, 4), block)
        assert (0, 4) in store and len(store) == 1
        assert store.nbytes == block.nbytes
        dense_before = block.nbytes
        block.dense_distribution()
        assert block.nbytes > dense_before, "dense tables must be accounted"
        assert store.nbytes == block.nbytes
        assert store.prune_before(5) == 1
        assert len(store) == 0
        counters = store.counters()
        assert counters["inserts"] == 1 and counters["prunes"] == 1

    def test_counters_shape(self):
        agg = SeaweedAggregator(leaf_size=8)
        agg.append(np.arange(20, dtype=float))
        agg.lis_length()
        doc = agg.counters()
        for key in ("multiplies", "blocks_built", "window", "leaves", "node_store", "nbytes"):
            assert key in doc
        assert doc["window"] == 20


# ------------------------------------------------------------------- sessions
class TestStreamingLIS:
    def test_push_maintains_the_window_cap(self):
        session = StreamingLIS(window=50, leaf_size=8)
        rng = np.random.default_rng(9)
        stream = rng.integers(0, 30, size=200).astype(float)
        session.push(stream[:50])
        for tick in range(10):
            dropped = session.push(stream[50 + tick * 15 : 65 + tick * 15])
            assert dropped == 15 and len(session) == 50
            lo = 65 + tick * 15 - 50
            assert np.array_equal(session.window_values(), stream[lo : lo + 50])
            assert session.lis_length() == lis_length(session.window_values())

    def test_non_strict_session(self):
        session = StreamingLIS(window=40, strict=False, leaf_size=8)
        rng = np.random.default_rng(10)
        stream = rng.integers(0, 5, size=120).astype(float)  # duplicate-heavy
        session.push(stream[:40])
        for tick in range(8):
            session.push(stream[40 + tick * 10 : 50 + tick * 10])
            assert session.lis_length() == lis_length(session.window_values(), strict=False)

    def test_rank_probes_and_substring_probes(self):
        session = StreamingLIS(window=64, leaf_size=8)
        rng = np.random.default_rng(11)
        session.push(rng.integers(0, 100, size=64).astype(float))
        window = session.window_values()
        assert session.rank_interval(0, 64) == session.lis_length()
        assert session.substring_lis(10, 40) == lis_length(window[10:40].tolist())

    def test_invalid_queries_raise(self):
        session = StreamingLIS(window=16)
        session.push(np.arange(16, dtype=float))
        with pytest.raises(ValueError):
            session.rank_intervals([-1], [4])
        with pytest.raises(ValueError):
            session.substring_scores([0], [17])
        with pytest.raises(ValueError):
            session.window_sweep(0)
        with pytest.raises(ValueError):
            StreamingLIS(window=0)


class TestStreamingLCS:
    def test_sliding_lcs_matches_dp(self):
        rng = np.random.default_rng(12)
        reference = rng.integers(0, 6, size=36)
        session = StreamingLCS(reference, window=28, leaf_size=8)
        stream = rng.integers(0, 6, size=100)
        session.push(stream[:28])
        for tick in range(12):
            session.push(stream[28 + tick * 6 : 34 + tick * 6])
            assert session.t_length == 28
            t_window = session.t_window()
            assert session.lcs_length() == lcs_length_dp(reference, t_window)

    def test_subwindow_queries_and_sweep(self):
        rng = np.random.default_rng(13)
        reference = rng.integers(0, 5, size=24)
        session = StreamingLCS(reference, leaf_size=8)
        stream = rng.integers(0, 5, size=40)
        session.append(stream)
        t_window = session.t_window()
        assert session.query(5, 25) == lcs_length_dp(reference, t_window[5:25])
        sweep = session.window_sweep(12, 7)
        want = [
            lcs_length_dp(reference, t_window[lo : lo + 12])
            for lo in range(0, len(t_window) - 12 + 1, 7)
        ]
        assert np.array_equal(sweep, np.asarray(want))

    def test_symbols_without_matches(self):
        session = StreamingLCS(np.asarray([1, 2, 3]), window=8)
        session.push(np.asarray([9, 9, 9, 9]))
        assert session.lcs_length() == 0
        session.push(np.asarray([2, 9, 3]))
        assert session.lcs_length() == 2
        assert session.evict(20) == 7
        assert session.lcs_length() == 0
        with pytest.raises(ValueError):
            session.query(0, 5)


# ------------------------------------------------------------------ recompose
class TestRecompose:
    @pytest.mark.parametrize("strict", [True, False])
    def test_extend_is_bit_identical_to_rebuild(self, strict):
        rng = np.random.default_rng(14)
        old = rng.integers(0, 40, size=130).astype(float)
        suffix = rng.integers(0, 40, size=37).astype(float)
        base = value_interval_matrix(old, strict=strict)
        patched = extend_value_matrix(base, old, suffix, strict=strict)
        full = value_interval_matrix(np.concatenate([old, suffix]), strict=strict)
        assert patched.matrix == full.matrix
        assert patched.length == full.length
        assert patched.lis_length() == full.lis_length()

    def test_empty_suffix_returns_the_original(self):
        old = np.asarray([3.0, 1.0, 2.0])
        base = value_interval_matrix(old)
        assert extend_value_matrix(base, old, np.empty(0)) is base

    def test_block_product_from_semilocal_validates(self):
        old = np.asarray([3.0, 1.0, 2.0])
        base = value_interval_matrix(old)
        with pytest.raises(ValueError, match="does not match"):
            block_product_from_semilocal(base, old[:2])
        from repro.lis import subsegment_matrix

        with pytest.raises(ValueError, match="value-interval"):
            block_product_from_semilocal(subsegment_matrix(old), old)


# ------------------------------------------------------------------- the spec
class TestStreamingThroughputSpec:
    def test_quick_grid_passes_checks(self):
        result = run_experiment("streaming_throughput", quick=True)
        assert result.checks_passed is True
        checksums = {point.row()["answers_checksum"] for point in result.points}
        assert len(checksums) == 1, "answers must be identical across backends"

    def test_point_asserts_oracle_identity(self):
        from repro.experiments.specs import run_streaming_throughput_point

        metrics = run_streaming_throughput_point(
            "random", "serial", n=256, ticks=4, slide=16, leaf_size=16, rebuild_sample=1
        )
        assert metrics["blocks_rebuilt"] >= 4
        assert metrics["speedup"] > 0


# ------------------------------------------------------------------ the CLI
class TestStreamCLI:
    def test_lis_artifact_round_trip(self, tmp_path, capsys):
        artifact = tmp_path / "stream.json"
        code = cli_main(
            [
                "stream",
                "--window", "128",
                "--ticks", "3",
                "--slide", "16",
                "--leaf-size", "16",
                "--seed", "5",
                "--artifact", str(artifact),
            ]
        )
        assert code == 0
        document = load_artifact(str(artifact))
        assert document["experiment"] == "stream"
        assert document["fixed"]["seed"] == 5
        assert len(document["points"]) == 3
        assert "streaming" in document and document["streaming"]["window"] == 128
        out = capsys.readouterr().out
        assert "streaming lis session" in out

    def test_seed_changes_the_recorded_answers(self, tmp_path):
        documents = []
        for seed in (1, 2):
            artifact = tmp_path / f"stream-{seed}.json"
            assert cli_main(
                ["stream", "--window", "96", "--ticks", "2", "--slide", "8",
                 "--leaf-size", "16", "--seed", str(seed), "--artifact", str(artifact)]
            ) == 0
            documents.append(load_artifact(str(artifact)))
        answers = [
            [point["metrics"]["answer"] for point in document["points"]]
            for document in documents
        ]
        assert answers[0] != answers[1]
        # Same CLI line -> bit-identical recorded points.
        artifact = tmp_path / "stream-repeat.json"
        assert cli_main(
            ["stream", "--window", "96", "--ticks", "2", "--slide", "8",
             "--leaf-size", "16", "--seed", "1", "--artifact", str(artifact)]
        ) == 0
        repeat = load_artifact(str(artifact))
        assert [p["metrics"]["answer"] for p in repeat["points"]] == answers[0]

    def test_lcs_session(self, tmp_path):
        artifact = tmp_path / "stream-lcs.json"
        code = cli_main(
            ["stream", "--session", "lcs", "--window", "64", "--ticks", "2",
             "--slide", "8", "--leaf-size", "16", "--artifact", str(artifact)]
        )
        assert code == 0
        document = load_artifact(str(artifact))
        assert document["fixed"]["session"] == "lcs"
