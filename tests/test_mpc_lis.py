"""Tests for the MPC LIS algorithms (Theorem 1.3, Corollary 1.3.2, approx baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lis import (
    lis_length,
    mpc_lis_approx,
    mpc_lis_length,
    mpc_lis_matrix,
    mpc_semilocal_lis,
)
from repro.lis.dp_baseline import lis_of_all_substrings
from repro.mpc import MPCCluster
from repro.mpc_monge import MongeMPCConfig
from repro.workloads import (
    block_sorted_sequence,
    decreasing_sequence,
    duplicate_heavy_sequence,
    planted_lis_sequence,
    random_permutation_sequence,
)


class TestMPCLIS:
    def test_matches_patience_on_workloads(self):
        workloads = [
            random_permutation_sequence(300, seed=1),
            planted_lis_sequence(250, 90, seed=2),
            block_sorted_sequence(200, 8, seed=3),
            decreasing_sequence(120),
            duplicate_heavy_sequence(220, 11, seed=4),
            np.arange(100),
        ]
        for seq in workloads:
            cluster = MPCCluster(len(seq), delta=0.5)
            assert mpc_lis_length(cluster, seq) == lis_length(seq)

    def test_empty_and_singleton(self):
        cluster = MPCCluster(1, delta=0.5)
        assert mpc_lis_length(cluster, []) == 0
        cluster = MPCCluster(1, delta=0.5)
        assert mpc_lis_length(cluster, [42]) == 1

    def test_various_deltas(self):
        seq = random_permutation_sequence(400, seed=5)
        expected = lis_length(seq)
        for delta in (0.3, 0.5, 0.7):
            cluster = MPCCluster(len(seq), delta=delta)
            assert mpc_lis_length(cluster, seq) == expected

    def test_round_complexity_is_logarithmic(self):
        rounds = []
        for n in (256, 4096):
            seq = random_permutation_sequence(n, seed=n)
            cluster = MPCCluster(n, delta=0.5)
            mpc_lis_length(cluster, seq)
            rounds.append(cluster.stats.num_rounds)
        # 16x the input should cost only a few more merge levels, not 16x rounds.
        assert rounds[1] < 6 * rounds[0]

    def test_space_budget_respected(self):
        seq = random_permutation_sequence(2000, seed=6)
        cluster = MPCCluster(2000, delta=0.5)
        mpc_lis_length(cluster, seq)
        assert cluster.stats.peak_machine_load <= cluster.space_per_machine

    def test_result_object(self):
        seq = random_permutation_sequence(150, seed=7)
        cluster = MPCCluster(150, delta=0.5)
        result = mpc_lis_matrix(cluster, seq)
        assert result.length == lis_length(seq)
        assert result.num_blocks >= 1
        assert result.semilocal.lis_length() == result.length

    def test_invalid_kind(self):
        cluster = MPCCluster(10, delta=0.5)
        with pytest.raises(ValueError):
            mpc_lis_matrix(cluster, [1, 2, 3], kind="bogus")


class TestMPCSemiLocalLIS:
    def test_subsegment_queries(self):
        seq = random_permutation_sequence(70, seed=8)
        cluster = MPCCluster(70, delta=0.5)
        result = mpc_semilocal_lis(cluster, seq)
        oracle = lis_of_all_substrings(seq)
        for i in range(0, 71, 6):
            for j in range(i, 71, 7):
                assert result.semilocal.query_substring(i, j) == oracle[i, j]


class TestApproxLIS:
    def test_never_exceeds_exact(self):
        for seed in range(5):
            seq = random_permutation_sequence(300, seed=seed)
            cluster = MPCCluster(300, delta=0.5)
            result = mpc_lis_approx(cluster, seq, epsilon=0.1)
            assert result.length <= lis_length(seq)

    def test_approximation_ratio(self):
        for seed in (1, 2, 3):
            seq = random_permutation_sequence(800, seed=seed)
            cluster = MPCCluster(800, delta=0.5)
            result = mpc_lis_approx(cluster, seq, epsilon=0.1)
            exact = lis_length(seq)
            assert result.length >= exact / 1.25

    def test_sorted_input_is_nearly_exact(self):
        seq = np.arange(500)
        cluster = MPCCluster(500, delta=0.5)
        # Grid rounding may cost a constant number of elements at the boundary.
        assert mpc_lis_approx(cluster, seq, epsilon=0.1).length >= 495

    def test_rounds_are_logarithmic(self):
        seq = random_permutation_sequence(2000, seed=4)
        cluster = MPCCluster(2000, delta=0.5)
        result = mpc_lis_approx(cluster, seq, epsilon=0.2)
        assert cluster.stats.num_rounds <= 40
        assert result.merge_levels <= 14

    def test_invalid_epsilon(self):
        cluster = MPCCluster(10, delta=0.5)
        with pytest.raises(ValueError):
            mpc_lis_approx(cluster, [1, 2], epsilon=0.0)


@settings(max_examples=20, deadline=None)
@given(
    seq=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=120),
    delta=st.sampled_from([0.4, 0.5, 0.6]),
)
def test_mpc_lis_matches_patience_property(seq, delta):
    """Property: the MPC LIS equals patience sorting for arbitrary inputs."""
    cluster = MPCCluster(len(seq), delta=delta)
    assert mpc_lis_length(cluster, seq) == lis_length(seq)
