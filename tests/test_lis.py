"""Tests for the sequential LIS algorithms (patience, DP, semi-local seaweed)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lis import (
    lis_length,
    lis_length_dp,
    lis_length_seaweed,
    lis_sequence,
    longest_nondecreasing_length,
    rank_transform,
    subsegment_matrix,
    value_interval_matrix,
)
from repro.lis.dp_baseline import lis_of_all_substrings, lis_of_value_ranges
from repro.lis.patience import lds_length
from repro.workloads import (
    block_sorted_sequence,
    decreasing_sequence,
    duplicate_heavy_sequence,
    planted_lis_sequence,
    random_permutation_sequence,
)


class TestPatience:
    def test_known_cases(self):
        assert lis_length([]) == 0
        assert lis_length([5]) == 1
        assert lis_length([1, 2, 3]) == 3
        assert lis_length([3, 2, 1]) == 1
        assert lis_length([2, 1, 3, 0, 4]) == 3
        assert lis_length([1, 1, 1]) == 1
        assert longest_nondecreasing_length([1, 1, 1]) == 3

    def test_matches_dp(self, rng):
        for _ in range(20):
            n = int(rng.integers(0, 40))
            seq = rng.integers(0, 12, size=n)
            assert lis_length(seq) == lis_length_dp(seq)
            assert longest_nondecreasing_length(seq) == lis_length_dp(seq, strict=False)

    def test_certificate_is_valid(self, rng):
        for _ in range(20):
            seq = list(rng.integers(0, 30, size=int(rng.integers(1, 40))))
            cert = lis_sequence(seq)
            assert len(cert) == lis_length(seq)
            assert all(cert[i] < cert[i + 1] for i in range(len(cert) - 1))
            # The certificate must be a subsequence of the input.
            it = iter(seq)
            assert all(any(x == value for x in it) for value in cert)

    def test_lds(self):
        assert lds_length([3, 2, 1]) == 3
        assert lds_length([1, 2, 3]) == 1


class TestRankTransform:
    def test_permutation_output(self, rng):
        seq = rng.integers(0, 10, size=25)
        ranks = rank_transform(seq)
        assert sorted(ranks.tolist()) == list(range(25))

    def test_preserves_strict_lis(self, rng):
        for _ in range(20):
            seq = rng.integers(0, 8, size=int(rng.integers(1, 30)))
            assert lis_length(rank_transform(seq, strict=True)) == lis_length(seq)

    def test_preserves_nondecreasing_lis(self, rng):
        for _ in range(20):
            seq = rng.integers(0, 8, size=int(rng.integers(1, 30)))
            assert lis_length(rank_transform(seq, strict=False)) == longest_nondecreasing_length(seq)


class TestSeaweedLIS:
    def test_matches_patience_on_workloads(self):
        workloads = [
            random_permutation_sequence(150, seed=1),
            planted_lis_sequence(120, 40, seed=2),
            block_sorted_sequence(100, 10, seed=3),
            decreasing_sequence(80),
            duplicate_heavy_sequence(130, 9, seed=4),
            np.arange(60),
        ]
        for seq in workloads:
            assert lis_length_seaweed(seq) == lis_length(seq)

    def test_empty_sequence(self):
        assert lis_length_seaweed([]) == 0

    def test_matrix_point_count(self, rng):
        seq = random_permutation_sequence(60, seed=7)
        sl = value_interval_matrix(seq)
        assert sl.matrix.num_nonzeros == 60 - lis_length(seq)
        assert sl.lis_length() == lis_length(seq)

    def test_value_interval_queries(self, rng):
        seq = random_permutation_sequence(18, seed=8)
        sl = value_interval_matrix(seq)
        oracle = lis_of_value_ranges(seq)
        for x in range(19):
            for y in range(x, 19):
                assert sl.query_rank_interval(x, y) == oracle[x, y]

    def test_subsegment_queries(self, rng):
        seq = random_permutation_sequence(18, seed=9)
        sl = subsegment_matrix(seq)
        oracle = lis_of_all_substrings(seq)
        for i in range(19):
            for j in range(i, 19):
                assert sl.query_substring(i, j) == oracle[i, j]

    def test_kind_mismatch_raises(self):
        seq = random_permutation_sequence(10, seed=1)
        with pytest.raises(ValueError):
            value_interval_matrix(seq).query_substring(0, 5)
        with pytest.raises(ValueError):
            subsegment_matrix(seq).query_rank_interval(0, 5)

    def test_dense_block_size_does_not_change_result(self):
        seq = random_permutation_sequence(90, seed=11)
        a = value_interval_matrix(seq, dense_block_size=1).matrix
        b = value_interval_matrix(seq, dense_block_size=32).matrix
        c = value_interval_matrix(seq, dense_block_size=256).matrix
        assert a == b == c


@settings(max_examples=50, deadline=None)
@given(
    seq=st.lists(st.integers(min_value=0, max_value=30), min_size=0, max_size=60),
)
def test_seaweed_lis_matches_patience_property(seq):
    """Property: the seaweed LIS equals patience sorting for arbitrary inputs."""
    assert lis_length_seaweed(seq) == lis_length(seq)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), n=st.integers(min_value=1, max_value=22))
def test_semilocal_subsegment_property(seed, n):
    """Property: every subsegment query equals the brute-force LIS."""
    rng = np.random.default_rng(seed)
    seq = rng.permutation(n)
    sl = subsegment_matrix(seq)
    oracle = lis_of_all_substrings(seq)
    for i in range(0, n + 1, max(1, n // 4)):
        for j in range(i, n + 1, max(1, n // 4)):
            assert sl.query_substring(i, j) == oracle[i, j]
