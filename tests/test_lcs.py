"""Tests for the LCS algorithms (Corollaries 1.3.1 and 1.3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lcs import (
    count_matches,
    lcs_cluster_for,
    lcs_length_dp,
    lcs_length_via_lis,
    lcs_of_all_suffixes,
    match_pairs,
    mpc_lcs_length,
    mpc_semilocal_lcs,
    semilocal_lcs,
)
from repro.mpc import MPCCluster, SpaceExceededError
from repro.workloads import correlated_string_pair, random_string_pair


class TestHuntSzymanski:
    def test_match_pairs_order(self):
        pairs = match_pairs("aba", "ab")
        # ordered by (i asc, j desc)
        assert pairs.tolist() == [[0, 0], [1, 1], [2, 0]]

    def test_count_matches(self):
        s, t = "abca", "aab"
        assert count_matches(s, t) == len(match_pairs(s, t))

    def test_lcs_via_lis_matches_dp(self, rng):
        for _ in range(15):
            n = int(rng.integers(1, 30))
            s = rng.integers(0, 5, size=n)
            t = rng.integers(0, 5, size=int(rng.integers(1, 30)))
            assert lcs_length_via_lis(list(s), list(t)) == lcs_length_dp(list(s), list(t))

    def test_no_matches(self):
        assert lcs_length_via_lis("abc", "xyz") == 0
        assert len(match_pairs("abc", "xyz")) == 0


class TestMPCLCS:
    def test_matches_dp(self):
        s, t = random_string_pair(50, 6, seed=3)
        cluster = lcs_cluster_for(len(s), len(t), count_matches(s, t))
        result = mpc_lcs_length(cluster, s, t)
        assert result.length == lcs_length_dp(s, t)
        assert result.num_matches == count_matches(s, t)

    def test_correlated_strings(self):
        s, t = correlated_string_pair(60, 10, 0.2, seed=4)
        cluster = lcs_cluster_for(len(s), len(t), count_matches(s, t))
        assert mpc_lcs_length(cluster, s, t).length == lcs_length_dp(s, t)

    def test_insufficient_total_space_raises(self):
        s, t = random_string_pair(80, 2, seed=5)  # dense matches
        small = MPCCluster(160, delta=0.5, num_machines=2, space_per_machine=64)
        with pytest.raises(SpaceExceededError):
            mpc_lcs_length(small, s, t)

    def test_empty_match_set(self):
        cluster = lcs_cluster_for(3, 3, 0)
        assert mpc_lcs_length(cluster, "abc", "xyz").length == 0


class TestSemiLocalLCS:
    def test_all_subsegments_small(self):
        s, t = random_string_pair(16, 4, seed=6)
        oracle = lcs_of_all_suffixes(s, t)
        sl = semilocal_lcs(s, t)
        for i in range(len(t) + 1):
            for j in range(i, len(t) + 1):
                assert sl.query(i, j) == oracle[i, j], (i, j)
        assert sl.lcs_length() == lcs_length_dp(s, t)

    def test_mpc_variant_matches_sequential(self):
        s, t = random_string_pair(20, 4, seed=7)
        cluster = lcs_cluster_for(len(s), len(t), count_matches(s, t))
        sl_mpc = mpc_semilocal_lcs(cluster, s, t)
        sl_seq = semilocal_lcs(s, t)
        for i in range(0, len(t) + 1, 3):
            for j in range(i, len(t) + 1, 4):
                assert sl_mpc.query(i, j) == sl_seq.query(i, j)

    def test_invalid_query(self):
        sl = semilocal_lcs("ab", "ba")
        with pytest.raises(ValueError):
            sl.query(2, 1)


@settings(max_examples=30, deadline=None)
@given(
    s=st.lists(st.integers(min_value=0, max_value=3), min_size=0, max_size=18),
    t=st.lists(st.integers(min_value=0, max_value=3), min_size=0, max_size=18),
)
def test_lcs_reduction_property(s, t):
    """Property: Hunt–Szymanski + strict LIS equals the LCS DP."""
    assert lcs_length_via_lis(s, t) == lcs_length_dp(s, t)
