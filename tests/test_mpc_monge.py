"""Tests for the MPC (sub)unit-Monge multiplication (Theorems 1.1 and 1.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    multiply,
    multiply_permutations,
    random_permutation,
    random_subpermutation,
)
from repro.mpc import MPCCluster, SpaceExceededError
from repro.mpc_monge import (
    MongeMPCConfig,
    default_fanin,
    grid_corners,
    mpc_multiply,
    mpc_multiply_subpermutation,
    mpc_multiply_warmup,
    paper_fanin,
    paper_grid_size,
)
from repro.mpc_monge.constant_round import mpc_combine
from repro.core.seaweed import expand_block_results, split_into_blocks
from repro.core.dense import multiply_dense


class TestParameters:
    def test_paper_formulas(self):
        assert paper_fanin(2 ** 20, 0.5) >= 2
        assert paper_grid_size(10_000, 0.5) == 100
        assert default_fanin(10_000, 0.5) >= paper_fanin(10_000, 0.5)

    def test_grid_corners(self):
        corners = grid_corners(10, 3)
        assert corners[0] == 0 and corners[-1] == 10
        assert np.all(np.diff(corners) > 0)
        assert list(grid_corners(4, 10)) == [0, 4]


class TestMPCMultiplyCorrectness:
    def test_matches_sequential(self, rng):
        for n in (8, 40, 150, 400):
            pa, pb = random_permutation(n, rng), random_permutation(n, rng)
            cluster = MPCCluster(n, delta=0.5)
            assert mpc_multiply(cluster, pa, pb) == multiply_permutations(pa, pb)

    def test_warmup_matches_sequential(self, rng):
        for n in (30, 200):
            pa, pb = random_permutation(n, rng), random_permutation(n, rng)
            cluster = MPCCluster(n, delta=0.5)
            assert mpc_multiply_warmup(cluster, pa, pb) == multiply_permutations(pa, pb)

    def test_forced_deep_recursion(self, rng):
        config = MongeMPCConfig(fanin=3, local_threshold=8, grid_size=4)
        for n in (40, 120):
            pa, pb = random_permutation(n, rng), random_permutation(n, rng)
            cluster = MPCCluster(n, delta=0.5)
            assert mpc_multiply(cluster, pa, pb, config) == multiply_permutations(pa, pb)

    def test_various_deltas(self, rng):
        n = 220
        pa, pb = random_permutation(n, rng), random_permutation(n, rng)
        expected = multiply_permutations(pa, pb)
        for delta in (0.3, 0.5, 0.7):
            cluster = MPCCluster(n, delta=delta)
            assert mpc_multiply(cluster, pa, pb) == expected

    def test_size_mismatch(self, rng):
        cluster = MPCCluster(10, delta=0.5)
        with pytest.raises(ValueError):
            mpc_multiply(cluster, random_permutation(4, rng), random_permutation(5, rng))


class TestMPCSubpermutation:
    def test_matches_sequential_general(self, rng):
        for _ in range(10):
            n1, n2, n3 = rng.integers(2, 60, size=3)
            pa = random_subpermutation(int(n1), int(n2), int(rng.integers(0, min(n1, n2) + 1)), rng)
            pb = random_subpermutation(int(n2), int(n3), int(rng.integers(0, min(n2, n3) + 1)), rng)
            cluster = MPCCluster(int(max(n1, n2, n3)), delta=0.5)
            assert mpc_multiply_subpermutation(cluster, pa, pb) == multiply(pa, pb)

    def test_full_permutation_shortcut(self, rng):
        pa, pb = random_permutation(30, rng), random_permutation(30, rng)
        cluster = MPCCluster(30, delta=0.5)
        assert mpc_multiply_subpermutation(cluster, pa, pb) == multiply_permutations(pa, pb)


class TestRoundAccounting:
    def test_constant_fanin_uses_fewer_rounds_than_warmup(self, rng):
        n = 4096
        pa, pb = random_permutation(n, rng), random_permutation(n, rng)
        main = MPCCluster(n, delta=0.5)
        mpc_multiply(main, pa, pb, MongeMPCConfig(fanin=8, tree_arity=8))
        warm = MPCCluster(n, delta=0.5)
        mpc_multiply_warmup(warm, pa, pb)
        assert main.stats.num_rounds < warm.stats.num_rounds

    def test_space_budget_respected(self, rng):
        n = 2048
        pa, pb = random_permutation(n, rng), random_permutation(n, rng)
        cluster = MPCCluster(n, delta=0.5)
        mpc_multiply(cluster, pa, pb)
        assert cluster.stats.peak_machine_load <= cluster.space_per_machine

    def test_rounds_grow_slowly_with_n(self, rng):
        rounds = []
        for n in (512, 4096):
            pa, pb = random_permutation(n, rng), random_permutation(n, rng)
            cluster = MPCCluster(n, delta=0.5)
            mpc_multiply(cluster, pa, pb)
            rounds.append(cluster.stats.num_rounds)
        # 8x the input size should cost far less than 8x the rounds.
        assert rounds[1] < rounds[0] * 3

    def test_communication_recorded(self, rng):
        n = 256
        pa, pb = random_permutation(n, rng), random_permutation(n, rng)
        cluster = MPCCluster(n, delta=0.5)
        mpc_multiply(cluster, pa, pb)
        assert cluster.stats.total_communication > 0
        assert cluster.stats.max_round_communication > 0


class TestMPCCombine:
    def test_combine_report(self, rng):
        n = 128
        pa, pb = random_permutation(n, rng), random_permutation(n, rng)
        split = split_into_blocks(pa, pb, 4)
        subresults = [
            multiply_dense(a, b).as_permutation()
            for a, b in zip(split.a_blocks, split.b_blocks)
        ]
        rows, cols, colors = expand_block_results(subresults, split)
        cluster = MPCCluster(n, delta=0.5)
        merged, report = mpc_combine(cluster, rows, cols, colors, 4, n, MongeMPCConfig(grid_size=16))
        assert merged.as_permutation() == multiply_permutations(pa, pb)
        assert report.num_colors == 4
        assert report.num_active_subgrids <= report.num_subgrids
        assert report.max_instance_words <= cluster.space_per_machine


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=120),
    fanin=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_mpc_multiply_matches_sequential_property(n, fanin, seed):
    """Property: the MPC algorithm agrees with the sequential product."""
    rng = np.random.default_rng(seed)
    pa, pb = random_permutation(n, rng), random_permutation(n, rng)
    cluster = MPCCluster(n, delta=0.5)
    config = MongeMPCConfig(fanin=fanin, local_threshold=max(8, n // 8))
    assert mpc_multiply(cluster, pa, pb, config) == multiply_permutations(pa, pb)
