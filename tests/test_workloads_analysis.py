"""Tests for workload generators and the analysis/report helpers."""

import numpy as np
import pytest

from repro.analysis import (
    TABLE1_PROFILES,
    format_series,
    format_summary,
    format_table,
    predicted_rounds,
    recursion_depth,
)
from repro.lis import lis_length
from repro.workloads import (
    block_sorted_sequence,
    correlated_string_pair,
    decreasing_sequence,
    duplicate_heavy_sequence,
    near_sorted_sequence,
    planted_lis_sequence,
    random_permutation_sequence,
    random_string_pair,
)


class TestGenerators:
    def test_random_permutation_sequence(self):
        seq = random_permutation_sequence(100, seed=1)
        assert sorted(seq.tolist()) == list(range(100))
        assert np.array_equal(seq, random_permutation_sequence(100, seed=1))

    def test_planted_lis(self):
        seq = planted_lis_sequence(200, 120, seed=2)
        assert sorted(seq.tolist()) == list(range(200))
        assert lis_length(seq) >= 120

    def test_planted_lis_invalid(self):
        with pytest.raises(ValueError):
            planted_lis_sequence(10, 20)

    def test_block_sorted(self):
        seq = block_sorted_sequence(60, 6, seed=3)
        assert lis_length(seq) == 6

    def test_decreasing(self):
        assert lis_length(decreasing_sequence(50)) == 1

    def test_near_sorted(self):
        seq = near_sorted_sequence(100, swaps=5, seed=4)
        assert lis_length(seq) >= 90

    def test_duplicate_heavy(self):
        seq = duplicate_heavy_sequence(100, 5, seed=5)
        assert len(np.unique(seq)) <= 5

    def test_string_pairs(self):
        s, t = random_string_pair(50, 4, seed=6)
        assert len(s) == len(t) == 50
        s2, t2 = correlated_string_pair(50, 4, 0.1, seed=7)
        assert (s2 == t2).mean() > 0.7


class TestAnalysis:
    def test_table1_profiles_complete(self):
        assert set(TABLE1_PROFILES) == {"kt10", "ims17_logn", "ims17_const", "chs23", "this_paper"}
        for profile in TABLE1_PROFILES.values():
            assert profile.rounds(1024, 0.5) >= 1.0

    def test_predicted_rounds_ordering(self):
        n = 1 << 16
        assert predicted_rounds("this_paper", n, 0.5) < predicted_rounds("kt10", n, 0.5)
        assert predicted_rounds("kt10", n, 0.5) < predicted_rounds("chs23", n, 0.5)

    def test_recursion_depth(self):
        assert recursion_depth(1024, fanin=2, local_threshold=64) == 4
        assert recursion_depth(1024, fanin=32, local_threshold=64) == 1
        assert recursion_depth(10, fanin=2, local_threshold=64) == 0

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_format_series_and_summary(self):
        assert "(1, 2)" in format_series("x", [1], [2])
        assert "rounds" in format_summary({"rounds": 3})
