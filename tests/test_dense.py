"""Unit tests for the dense ground-truth multiplication oracle."""

import numpy as np
import pytest

from repro.core import (
    Permutation,
    SubPermutation,
    identity_permutation,
    is_distribution_matrix,
    multiply_dense,
    random_permutation,
    random_subpermutation,
)
from repro.core.dense import minplus_distribution_product, subpermutation_from_distribution


class TestMinPlusProduct:
    def test_shape_mismatch(self):
        a = np.zeros((3, 4), dtype=np.int64)
        b = np.zeros((5, 3), dtype=np.int64)
        with pytest.raises(ValueError):
            minplus_distribution_product(a, b)

    def test_identity_distribution(self):
        ident = identity_permutation(4)
        dist = ident.distribution_matrix()
        prod = minplus_distribution_product(dist, dist)
        assert np.array_equal(prod, dist)

    def test_small_known_product(self):
        # The reversal permutation is idempotent under the ⊡ product (its
        # distribution matrix is the pointwise smallest, hence absorbing).
        rev = Permutation([2, 1, 0])
        result = multiply_dense(rev, rev)
        assert result == rev
        assert multiply_dense(Permutation([1, 2, 0]), Permutation([2, 0, 1])) == rev

    def test_identity_is_neutral(self, rng):
        p = random_permutation(9, rng)
        ident = identity_permutation(9)
        assert multiply_dense(p, ident) == p
        assert multiply_dense(ident, p) == p


class TestDistributionRecovery:
    def test_roundtrip(self, rng):
        for _ in range(10):
            sp = random_subpermutation(8, 10, 5, rng)
            assert subpermutation_from_distribution(sp.distribution_matrix()) == sp

    def test_invalid_distribution_rejected(self):
        bad = np.array([[0, 2], [0, 0]], dtype=np.int64)
        with pytest.raises(ValueError):
            subpermutation_from_distribution(bad)

    def test_is_distribution_matrix(self, rng):
        sp = random_subpermutation(7, 7, 4, rng)
        assert is_distribution_matrix(sp.distribution_matrix())
        assert not is_distribution_matrix(np.array([[1, 0], [0, 0]]))


class TestMultiplyDense:
    def test_product_is_permutation_when_inputs_are(self, rng):
        for _ in range(10):
            n = int(rng.integers(1, 25))
            pa, pb = random_permutation(n, rng), random_permutation(n, rng)
            result = multiply_dense(pa, pb)
            assert isinstance(result, Permutation)
            result.validate()

    def test_product_respects_definition(self, rng):
        # Check the defining min-plus identity on the distribution matrices.
        n = 12
        pa, pb = random_permutation(n, rng), random_permutation(n, rng)
        pc = multiply_dense(pa, pb)
        da, db, dc = (
            pa.distribution_matrix(),
            pb.distribution_matrix(),
            pc.distribution_matrix(),
        )
        expected = minplus_distribution_product(da, db)
        assert np.array_equal(dc, expected)

    def test_subpermutation_nonzeros_bound(self, rng):
        pa = random_subpermutation(9, 7, 4, rng)
        pb = random_subpermutation(7, 11, 5, rng)
        pc = multiply_dense(pa, pb)
        assert pc.shape == (9, 11)
        assert pc.num_nonzeros <= min(pa.num_nonzeros, pb.num_nonzeros)

    def test_inner_dimension_mismatch(self, rng):
        pa = random_subpermutation(4, 5, 2, rng)
        pb = random_subpermutation(6, 4, 2, rng)
        with pytest.raises(ValueError):
            multiply_dense(pa, pb)
