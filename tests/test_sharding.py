"""Tests for the sharded serving tier (:mod:`repro.service.sharding`).

The invariants every scaling change must preserve:

* bit-identity — a mixed batch routed across 1/2/4 shards must match the
  serial :class:`QueryService` oracle exactly, outcome for outcome, with
  the answers demuxed back into the original batch positions;
* ring stability — adding a shard moves only ~1/N of the fingerprints,
  and every moved fingerprint lands on the *new* shard (resident caches
  stay warm);
* fault tolerance — a killed worker process is detected, restarted, its
  sub-batch retried, and the ``restarts`` counter reflects it;
* isolation — each worker spills into a private subdirectory that is
  removed at shutdown.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.experiments import get_spec, run_experiment
from repro.experiments.cli import main as cli_main
from repro.server import get_json, post_json, start_server
from repro.service import (
    ConsistentHashRing,
    IndexCache,
    QueryRequest,
    QueryService,
    ServiceRequestError,
    ShardRouter,
    TargetSpec,
)


def _seq_target(n=96, seed=20, workload="random"):
    return TargetSpec(kind="sequence", workload=workload, n=n, seed=seed)


def _pair_target(n=64, seed=3):
    return TargetSpec(kind="string_pair", workload="correlated_pair", n=n, seed=seed)


def _mixed_requests(seed=0, targets=6, n=96):
    """A mixed LIS/LCS batch over ``targets`` distinct fingerprints."""
    rng = np.random.default_rng(seed)
    requests = []
    for index in range(targets):
        target = _seq_target(n=n, seed=seed + index)
        i = rng.integers(0, n - 1, size=3)
        j = np.minimum(i + rng.integers(1, n // 2, size=3), n)
        requests.append(
            QueryRequest(op="lis_length", target=target, request_id=f"len{index}")
        )
        requests.append(
            QueryRequest(
                op="substring_query", target=target, request_id=f"sub{index}", i=i, j=j
            )
        )
        requests.append(
            QueryRequest(
                op="rank_interval_query", target=target, request_id=f"rank{index}", x=0, y=n
            )
        )
    for index in range(2):
        target = _pair_target(seed=seed + 50 + index)
        requests.append(
            QueryRequest(op="lcs_length", target=target, request_id=f"lcs{index}")
        )
    # Shuffle so shard sub-batches interleave in the original positions.
    order = rng.permutation(len(requests))
    return [requests[k] for k in order]


def _assert_same_outcomes(observed, expected):
    assert len(observed) == len(expected)
    for ours, oracle in zip(observed, expected):
        assert ours.request_id == oracle.request_id
        assert ours.op == oracle.op
        assert ours.index_fingerprint == oracle.index_fingerprint
        assert np.array_equal(np.asarray(ours.result), np.asarray(oracle.result)), (
            f"request {ours.request_id}: {ours.result} != {oracle.result}"
        )


# ---------------------------------------------------------------------- ring
class TestConsistentHashRing:
    def test_deterministic_and_in_range(self):
        ring_a, ring_b = ConsistentHashRing(4), ConsistentHashRing(4)
        keys = [f"key-{k}" for k in range(500)]
        owners = [ring_a.owner(key) for key in keys]
        assert owners == [ring_b.owner(key) for key in keys]
        assert set(owners) == {0, 1, 2, 3}

    def test_adding_a_shard_moves_only_its_fraction(self):
        before, after = ConsistentHashRing(4), ConsistentHashRing(5)
        keys = [f"fingerprint-{k:05d}" for k in range(2000)]
        moved = [key for key in keys if before.owner(key) != after.owner(key)]
        fraction = len(moved) / len(keys)
        # Ideal is 1/5; virtual nodes keep the real fraction near it.
        assert 0.05 <= fraction <= 0.35, f"moved fraction {fraction:.3f} out of band"
        # Consistency proper: every moved key lands on the NEW shard only.
        assert all(after.owner(key) == 4 for key in moved)

    def test_rejects_degenerate_configs(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(0)
        with pytest.raises(ValueError):
            ConsistentHashRing(2, replicas=0)


# ------------------------------------------------------------- bit-identity
class TestRouterBitIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_mixed_batches_match_serial_oracle(self, shards):
        requests = _mixed_requests(seed=shards)
        oracle = QueryService(cache=IndexCache())
        expected = oracle.submit(requests).outcomes
        router = ShardRouter(shards, force_serial=True)
        try:
            for _ in range(2):  # cold then warm
                _assert_same_outcomes(router.submit(requests).outcomes, expected)
        finally:
            router.close()

    def test_process_workers_match_serial_oracle(self):
        requests = _mixed_requests(seed=9, targets=4)
        oracle = QueryService(cache=IndexCache())
        expected = oracle.submit(requests).outcomes
        router = ShardRouter(2)
        try:
            batch = router.submit(requests)
            _assert_same_outcomes(batch.outcomes, expected)
            stats = router.stats()
            assert stats["workers"] == "process"
            assert stats["serial_fallback"] is None
            assert sum(stats["load"]["per_shard_requests"]) == len(requests)
            assert stats["load"]["shards_exercised"] >= 1
            assert stats["requests_served"] == len(requests)
            per_shard = stats["per_shard"]
            assert len(per_shard) == 2
            assert all(doc["pid"] != os.getpid() for doc in per_shard)
        finally:
            router.close()

    def test_refresh_routes_and_matches_oracle(self):
        target = _seq_target(n=64, seed=31)
        tail = [3.0, 1.0, 4.0]
        refresh = QueryRequest(
            op="refresh", target=target, request_id="ref", append=tuple(tail)
        )
        oracle = QueryService(cache=IndexCache())
        expected = oracle.submit([refresh]).outcomes
        router = ShardRouter(2, force_serial=True)
        try:
            observed = router.submit([refresh]).outcomes
            _assert_same_outcomes(observed, expected)
        finally:
            router.close()

    def test_unknown_op_rejected_before_any_dispatch(self):
        router = ShardRouter(2, force_serial=True)
        try:
            bad = QueryRequest(op="nope", target=_seq_target(), request_id="x")
            with pytest.raises(ServiceRequestError, match="unknown op"):
                router.submit([bad])
            assert router.stats()["requests_served"] == 0
        finally:
            router.close()


# ----------------------------------------------------------- fault injection
class TestWorkerCrashRecovery:
    def test_killed_worker_restarts_and_answers(self):
        requests = _mixed_requests(seed=5, targets=4)
        oracle = QueryService(cache=IndexCache())
        expected = oracle.submit(requests).outcomes
        router = ShardRouter(2)
        try:
            assert router.stats()["workers"] == "process"
            _assert_same_outcomes(router.submit(requests).outcomes, expected)
            # Kill both workers outright: every shard must detect the dead
            # pipe, restart, and re-answer (rebuilding its caches).
            for worker in router._workers:
                worker.process.kill()
                worker.process.join(timeout=10)
            _assert_same_outcomes(router.submit(requests).outcomes, expected)
            stats = router.stats()
            assert stats["restarts"] >= 1
            assert all(doc.get("error") is None for doc in stats["per_shard"])
        finally:
            router.close()

    def test_crash_loop_gives_up_after_retry_limit(self):
        router = ShardRouter(1, retry_limit=1)
        try:
            assert router.stats()["workers"] == "process"
            original_spawn = router._workers[0]._spawn

            def spawn_dead():
                original_spawn()
                router._workers[0].process.kill()
                router._workers[0].process.join(timeout=10)

            router._workers[0].process.kill()
            router._workers[0].process.join(timeout=10)
            router._workers[0]._spawn = spawn_dead
            with pytest.raises(RuntimeError, match="crashed .* times"):
                router.submit(
                    [QueryRequest(op="lis_length", target=_seq_target(), request_id="a")]
                )
            router._workers[0]._spawn = original_spawn
        finally:
            router.close()


# ------------------------------------------------------- spill + prefetch
class TestIsolationAndWarmup:
    def test_workers_spill_into_private_subdirs_cleaned_on_close(self, tmp_path):
        spill_root = str(tmp_path / "spill")
        # A tiny budget forces every built index through the spill path.
        router = ShardRouter(2, cache_bytes=4096, spill_dir=spill_root)
        try:
            assert router.stats()["workers"] == "process"
            router.submit(_mixed_requests(seed=2, targets=4))
            subdirs = os.listdir(spill_root)
            assert len(subdirs) == 2
            assert all(name.startswith("shard") and "-pid" in name for name in subdirs)
            assert any(
                files for files in (os.listdir(os.path.join(spill_root, d)) for d in subdirs)
            ), "tiny cache budget should have spilled at least one index"
        finally:
            router.close()
        assert os.listdir(spill_root) == []

    def test_prefetch_makes_submissions_pure_cache_hits(self):
        requests = _mixed_requests(seed=12, targets=4)
        specs = {
            (
                request.target,
                request.index_kind(),
                True if request.index_kind() == "lcs" else bool(request.strict),
            )
            for request in requests
            if request.op != "refresh"
        }
        router = ShardRouter(2, force_serial=True)
        try:
            report = router.prefetch(sorted(specs, key=lambda item: item[1]))
            assert report["prefetched"] == len(specs)
            assert report["already_cached"] == 0
            batch = router.submit([r for r in requests if r.op != "refresh"])
            assert batch.indexes_built == 0
            assert all(outcome.cache_hit for outcome in batch.outcomes)
        finally:
            router.close()

    def test_ensure_index_routes_and_validates(self):
        router = ShardRouter(2, force_serial=True)
        try:
            target = _seq_target(n=48, seed=8)
            info, was_cached = router.ensure_index(target)
            assert not was_cached and info.kind == "lis:position" and info.was_built
            info2, was_cached2 = router.ensure_index(target)
            assert was_cached2 and info2.fingerprint == info.fingerprint
            with pytest.raises(ServiceRequestError, match="does not fit"):
                router.ensure_index(target, "lcs")
            with pytest.raises(ServiceRequestError, match="unknown index kind"):
                router.ensure_index(target, "bogus")
        finally:
            router.close()

    def test_forced_serial_fallback_is_recorded(self):
        router = ShardRouter(3, force_serial=True)
        try:
            stats = router.stats()
            assert stats["workers"] == "inline"
            assert stats["serial_fallback"] == "forced"
            assert router.concurrency == 1
        finally:
            router.close()


# ------------------------------------------------------------ HTTP front-end
class TestRouterBehindServer:
    def test_sharded_server_answers_and_reports_shard_stats(self):
        router = ShardRouter(2)
        handle = start_server(router, port=0)
        try:
            document = {
                "requests": [
                    {"op": "lis_length", "id": f"r{s}", "workload": "random",
                     "n": 128, "seed": s}
                    for s in range(5)
                ]
                + [
                    {"op": "lcs_length", "id": "c", "string_workload": "correlated_pair",
                     "n": 64, "seed": 3}
                ]
            }
            status, _, cold = post_json(handle.url + "/v2/batch", document)
            assert status == 200 and cold["errors"] == 0
            status, _, warm = post_json(handle.url + "/v2/batch", document)
            assert status == 200 and warm["errors"] == 0
            assert [r["result"] for r in warm["results"]] == [
                r["result"] for r in cold["results"]
            ]
            assert all(r["cache_hit"] for r in warm["results"])

            status, _, stats = get_json(handle.url + "/stats")
            assert status == 200
            assert stats["service_concurrency"] == 2
            service = stats["service"]
            assert service["sharded"] and service["shards"] == 2
            assert sum(service["load"]["per_shard_requests"]) == 12
            timings = service["router_timings"]
            assert set(timings) == {"queue_wait", "shard_exec"}
            assert timings["shard_exec"]["count"] == 12
            assert timings["shard_exec"]["total_seconds"] > 0.0
        finally:
            handle.stop()
        # Server shutdown must have closed the router's workers.
        assert router.closed
        assert all(worker.process is None for worker in router._workers)


# ------------------------------------------------------------ spec + CLI
class TestShardScalingSpecAndCli:
    def test_quick_spec_passes_checks(self):
        result = run_experiment(get_spec("shard_scaling"), quick=True)
        rows = [point.row() for point in result.points]
        assert [row["shards"] for row in rows] == [1, 2]
        checksums = {row["answers_checksum"] for row in rows}
        assert len(checksums) == 1
        assert all(row["mismatches"] == 0 for row in rows)

    def test_cli_serve_with_shards_writes_valid_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "serve.json"
        requests_file = tmp_path / "requests.json"
        requests_file.write_text(
            json.dumps(
                {
                    "schema": "repro.service.requests",
                    "version": 2,
                    "requests": [
                        {"op": "lis_length", "id": "a", "workload": "random",
                         "n": 64, "seed": 1},
                        {"op": "lcs_length", "id": "b",
                         "string_workload": "correlated_pair", "n": 48, "seed": 3},
                    ],
                }
            )
        )
        code = cli_main(
            [
                "serve",
                "--requests", str(requests_file),
                "--repeat", "2",
                "--shards", "2",
                "--artifact", str(artifact),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "across 2 shards" in out
        document = json.loads(artifact.read_text())
        assert document["fixed"]["shards"] == 2
        assert document["service"]["sharded"] is True
        assert cli_main(["validate", str(artifact)]) == 0
