"""End-to-end integration tests across the whole pipeline."""

import numpy as np
import pytest

from repro.core import multiply_permutations, random_permutation
from repro.core.dense import multiply_dense
from repro.core.seaweed import expand_block_results, split_into_blocks
from repro.lis import lis_length, lis_length_seaweed, mpc_lis_length, value_interval_matrix
from repro.lcs import count_matches, lcs_cluster_for, lcs_length_dp, mpc_lcs_length
from repro.mpc import MPCCluster
from repro.mpc_monge import MongeMPCConfig, SubgridInstance, mpc_multiply
from repro.mpc_monge.constant_round import mpc_combine
from repro.workloads import planted_lis_sequence, random_permutation_sequence, random_string_pair


class TestSubgridInstance:
    def _build_instance(self, n, num_blocks, grid, rng):
        from repro.core.combine import ColoredPointSet

        pa, pb = random_permutation(n, rng), random_permutation(n, rng)
        split = split_into_blocks(pa, pb, num_blocks)
        results = [
            multiply_dense(a, b).as_permutation()
            for a, b in zip(split.a_blocks, split.b_blocks)
        ]
        rows, cols, colors = expand_block_results(results, split)
        ps = ColoredPointSet(rows, cols, colors, num_blocks, n, n)
        return rows, cols, colors, ps, multiply_permutations(pa, pb)

    def test_local_sigma_matches_global(self, rng):
        n, H = 48, 3
        rows, cols, colors, ps, _ = self._build_instance(n, H, 12, rng)
        r0, r1, c0, c1 = 12, 24, 24, 36
        order_r = np.argsort(rows, kind="stable")
        order_c = np.argsort(cols, kind="stable")
        rr, rc, rcol = rows[order_r], cols[order_r], colors[order_r]
        cr, cc, ccol = rows[order_c], cols[order_c], colors[order_c]
        row_sel = (rr >= r0) & (rr < r1)
        col_sel = (cc >= c0) & (cc < c1)
        instance = SubgridInstance(
            r0=r0, r1=r1, c0=c0, c1=c1, num_colors=H,
            band_row_rows=rr[row_sel], band_row_cols=rc[row_sel], band_row_colors=rcol[row_sel],
            band_col_rows=cr[col_sel], band_col_cols=cc[col_sel], band_col_colors=ccol[col_sel],
            row_total_at_r0=ps.row_suffix_counts(np.array([r0]))[0],
            col_total_at_c0=ps.col_prefix_counts(np.array([c0]))[0],
            corner_value=ps.dominance_counts(np.array([r0]), np.array([c0]))[0],
        )
        # The subgrid-local evaluator must agree with the global one everywhere
        # inside the subgrid (this is the §3.3 locality argument).
        test_r = np.array([r0, r0 + 3, r1 - 1, r1, r0 + 7])
        test_c = np.array([c0, c0 + 5, c1, c1 - 2, c0 + 9])
        assert np.array_equal(instance.sigma(test_r, test_c), ps.sigma(test_r, test_c))
        assert instance.size_words > 0

    def test_mpc_combine_space_report(self, rng):
        n = 96
        rows, cols, colors, ps, expected = self._build_instance(n, 4, 16, rng)
        cluster = MPCCluster(n, delta=0.5)
        merged, report = mpc_combine(
            cluster, rows, cols, colors, 4, n, MongeMPCConfig(grid_size=12)
        )
        assert merged.as_permutation() == expected
        assert report.max_instance_words <= cluster.space_per_machine


class TestPipelines:
    def test_lis_three_ways_agree(self):
        seq = planted_lis_sequence(350, 120, seed=17)
        sequential = lis_length(seq)
        seaweed = lis_length_seaweed(seq)
        cluster = MPCCluster(len(seq), delta=0.5)
        distributed = mpc_lis_length(cluster, seq)
        assert sequential == seaweed == distributed

    def test_multiply_three_ways_agree(self, rng):
        n = 180
        pa, pb = random_permutation(n, rng), random_permutation(n, rng)
        dense = multiply_dense(pa, pb).as_permutation()
        sequential = multiply_permutations(pa, pb)
        cluster = MPCCluster(n, delta=0.5)
        distributed = mpc_multiply(cluster, pa, pb)
        assert dense == sequential == distributed

    def test_lcs_pipeline(self):
        s, t = random_string_pair(40, 5, seed=21)
        cluster = lcs_cluster_for(len(s), len(t), count_matches(s, t))
        assert mpc_lcs_length(cluster, s, t).length == lcs_length_dp(s, t)

    def test_semilocal_value_queries_consistent_with_mpc(self):
        seq = random_permutation_sequence(120, seed=23)
        sequential = value_interval_matrix(seq)
        cluster = MPCCluster(len(seq), delta=0.5)
        from repro.lis import mpc_lis_matrix

        distributed = mpc_lis_matrix(cluster, seq, kind="value")
        assert sequential.matrix == distributed.semilocal.matrix

    def test_table1_qualitative_content(self):
        """The qualitative content of Table 1.

        This paper's algorithm uses strictly fewer rounds than the CHS23-style
        baseline at the same scale, and — unlike KT10 — it remains admissible
        in the fully-scalable regime (δ = 0.5).
        """
        from repro.baselines import chs23_lis_length, kt10_lis_length
        from repro.mpc import ScalabilityError

        n = 2048
        seq = random_permutation_sequence(n, seed=29)
        ours = MPCCluster(n, delta=0.5)
        assert mpc_lis_length(ours, seq) == lis_length(seq)
        chs23 = MPCCluster(n, delta=0.5)
        chs23_lis_length(chs23, seq)
        assert ours.stats.num_rounds < chs23.stats.num_rounds
        with pytest.raises(ScalabilityError):
            kt10_lis_length(MPCCluster(n, delta=0.5), seq)
        # KT10 works (and is exact) in its restricted range of δ.
        kt10 = MPCCluster(n, delta=0.25)
        assert kt10_lis_length(kt10, seq) == lis_length(seq)
