"""Tests for the perf subsystem (:mod:`repro.perf`) and its CLI."""

import copy
import json

import numpy as np
import pytest

from repro.core import MultiplyPlan
from repro.experiments.artifacts import load_artifact, validate_artifact
from repro.experiments.cli import main as cli_main
from repro.perf import (
    calibrate_cpu,
    check_speedup,
    compare_documents,
    format_report,
    perf_cases,
    run_perf,
)


class TestCaseGrid:
    def test_quick_grid_is_a_subset_of_full(self):
        cases = perf_cases()
        names = [case.name for case in cases]
        assert len(names) == len(set(names)), "case names must be unique"
        quick = [case for case in cases if case.quick]
        assert quick and len(quick) < len(cases)
        groups = {case.group for case in cases}
        assert {"multiply", "reference", "semilocal", "streaming", "service"} <= groups
        # The full grid covers the issue's size range and both fan-ins.
        multiply_sizes = {case.params["n"] for case in cases if case.group == "multiply"}
        assert {256, 4096, 16384} <= multiply_sizes
        assert {case.params["fanin"] for case in cases if case.group == "multiply"} == {2, 4}

    def test_calibration_is_positive_and_stable(self):
        first = calibrate_cpu(repeats=2)
        assert first > 0


class TestRunPerf:
    def test_quick_run_produces_valid_artifact(self):
        document = run_perf(quick=True, repeats=1)
        validate_artifact(document)
        assert document["experiment"] == "perf_core"
        assert document["quick"] is True
        assert document["perf"]["calibration_seconds"] > 0
        speedup = document["perf"]["multiply_speedup_vs_reference"]
        assert speedup is not None and speedup > 1.0
        for point in document["points"]:
            assert point["metrics"]["seconds"] > 0
            assert point["metrics"]["normalized"] > 0
        names = {point["params"]["case"] for point in document["points"]}
        assert "multiply_n1024_h2" in names and "multiply_reference_n1024" in names

    def test_plan_is_recorded(self):
        plan = MultiplyPlan(fanin=3, base_size=16)
        document = run_perf(quick=True, repeats=1, plan=plan)
        assert document["perf"]["plan"] == plan.describe()
        assert document["fixed"]["plan"]["fanin"] == 3


class TestRegressionGate:
    def _fake_document(self, cases):
        return {
            "points": [
                {
                    "params": {"case": name, "group": "multiply", "n": 1},
                    "metrics": {"seconds": seconds, "normalized": normalized},
                    "seconds": seconds,
                }
                for name, seconds, normalized in cases
            ],
            "perf": {"multiply_speedup_vs_reference": 5.0, "headline_n": 4096},
        }

    def test_matching_cases_within_tolerance_pass(self):
        baseline = self._fake_document([("a", 0.1, 1.0), ("b", 0.2, 2.0)])
        current = self._fake_document([("a", 0.1, 1.4), ("b", 0.2, 1.8)])
        report = compare_documents(current, baseline, tolerance=1.5)
        assert report["ok"] and report["checked"] == 2
        assert not report["regressions"]

    def test_regression_beyond_tolerance_fails(self):
        baseline = self._fake_document([("a", 0.1, 1.0)])
        current = self._fake_document([("a", 0.4, 4.0)])
        report = compare_documents(current, baseline, tolerance=2.0)
        assert not report["ok"]
        assert report["regressions"][0]["case"] == "a"
        assert report["regressions"][0]["ratio"] == pytest.approx(4.0)
        assert "REGRESSED" in format_report(report)

    def test_unmatched_cases_are_informational(self):
        baseline = self._fake_document([("a", 0.1, 1.0), ("old", 0.1, 1.0)])
        current = self._fake_document([("a", 0.1, 1.0), ("new", 0.1, 1.0)])
        report = compare_documents(current, baseline)
        assert report["ok"]
        assert report["only_in_current"] == ["new"]
        assert report["only_in_baseline"] == ["old"]

    def test_invalid_tolerance_rejected(self):
        doc = self._fake_document([("a", 0.1, 1.0)])
        with pytest.raises(ValueError):
            compare_documents(doc, doc, tolerance=0)

    def test_speedup_floor(self):
        doc = self._fake_document([])
        assert check_speedup(doc, floor=3.0) is None
        assert check_speedup(doc, floor=6.0) is not None
        assert check_speedup({"perf": {}}, floor=1.0) is not None


class TestRecordedBaseline:
    def test_recorded_baseline_is_valid_and_proves_the_claim(self):
        document = load_artifact("results/perf_core.json")
        assert document["experiment"] == "perf_core"
        assert document["quick"] is False
        # The acceptance criterion: >= 3x at n=4096 vs the recursive oracle.
        perf = document["perf"]
        assert perf["headline_n"] == 4096
        assert perf["multiply_speedup_vs_reference"] >= 3.0
        assert check_speedup(document, floor=3.0) is None
        names = {point["params"]["case"] for point in document["points"]}
        assert "multiply_n4096_h2" in names and "multiply_reference_n4096" in names


class TestPerfCLI:
    def test_cli_quick_run_writes_and_validates(self, tmp_path, capsys):
        out_path = tmp_path / "perf.json"
        code = cli_main(["perf", "--quick", "--repeats", "1", "--no-check",
                         "--json", str(out_path)])
        assert code == 0
        document = load_artifact(str(out_path))
        assert document["experiment"] == "perf_core"
        assert cli_main(["validate", str(out_path)]) == 0

    def test_cli_gates_on_fabricated_regression(self, tmp_path):
        # A baseline claiming everything once ran ~1000x faster must trip the
        # tolerance check and exit non-zero.
        document = run_perf(quick=True, repeats=1)
        fabricated = copy.deepcopy(document)
        for point in fabricated["points"]:
            point["metrics"]["normalized"] /= 1000.0
        baseline_path = tmp_path / "baseline.json"
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump(fabricated, handle)
        code = cli_main(["perf", "--quick", "--repeats", "1",
                         "--baseline", str(baseline_path)])
        assert code == 1

    def test_cli_respects_plan_knobs(self, tmp_path):
        out_path = tmp_path / "perf-knobs.json"
        code = cli_main(["perf", "--quick", "--repeats", "1", "--no-check",
                         "--fanin", "3", "--base-size", "24",
                         "--json", str(out_path)])
        assert code == 0
        document = load_artifact(str(out_path))
        assert document["perf"]["plan"]["fanin"] == 3
        assert document["perf"]["plan"]["base_size"] == 24
