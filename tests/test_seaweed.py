"""Tests for the sequential seaweed multiplication (Theorems 1.1/1.2 sequential form)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Permutation,
    SubPermutation,
    identity_permutation,
    multiply,
    multiply_dense,
    multiply_permutations,
    random_permutation,
    random_subpermutation,
)
from repro.core.seaweed import (
    block_boundaries,
    pad_to_permutations,
    split_into_blocks,
    strip_padding,
)


class TestSplit:
    def test_block_boundaries(self):
        bounds = block_boundaries(10, 3)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert len(bounds) == 4

    def test_split_blocks_are_permutations(self, rng):
        pa, pb = random_permutation(20, rng), random_permutation(20, rng)
        split = split_into_blocks(pa, pb, 4)
        assert split.num_blocks == 4
        total = 0
        for a_blk, b_blk, rmap, cmap in zip(
            split.a_blocks, split.b_blocks, split.row_maps, split.col_maps
        ):
            a_blk.validate()
            b_blk.validate()
            assert a_blk.size == b_blk.size == len(rmap) == len(cmap)
            total += a_blk.size
        assert total == 20

    def test_row_maps_partition_rows(self, rng):
        pa, pb = random_permutation(15, rng), random_permutation(15, rng)
        split = split_into_blocks(pa, pb, 3)
        all_rows = np.concatenate(split.row_maps)
        assert sorted(all_rows.tolist()) == list(range(15))
        all_cols = np.concatenate(split.col_maps)
        assert sorted(all_cols.tolist()) == list(range(15))


class TestMultiplyPermutations:
    def test_matches_dense_small(self, rng):
        for n in (1, 2, 3, 7, 20, 45):
            pa, pb = random_permutation(n, rng), random_permutation(n, rng)
            expected = multiply_dense(pa, pb).as_permutation()
            got = multiply_permutations(pa, pb, base_size=4)
            assert got == expected

    def test_all_fanins_agree(self, rng):
        pa, pb = random_permutation(40, rng), random_permutation(40, rng)
        reference = multiply_permutations(pa, pb, fanin=2, base_size=4)
        for fanin in (3, 4, 7, 16):
            assert multiply_permutations(pa, pb, fanin=fanin, base_size=4) == reference

    def test_identity_neutral(self, rng):
        p = random_permutation(30, rng)
        ident = identity_permutation(30)
        assert multiply_permutations(p, ident, base_size=4) == p
        assert multiply_permutations(ident, p, base_size=4) == p

    def test_associativity(self, rng):
        n = 24
        a, b, c = (random_permutation(n, rng) for _ in range(3))
        left = multiply_permutations(multiply_permutations(a, b, base_size=4), c, base_size=4)
        right = multiply_permutations(a, multiply_permutations(b, c, base_size=4), base_size=4)
        assert left == right

    def test_size_mismatch(self, rng):
        with pytest.raises(ValueError):
            multiply_permutations(random_permutation(3, rng), random_permutation(4, rng))

    def test_invalid_fanin(self, rng):
        with pytest.raises(ValueError):
            multiply_permutations(
                random_permutation(4, rng), random_permutation(4, rng), fanin=1
            )

    def test_empty(self):
        empty = Permutation(np.empty(0, dtype=np.int64))
        assert multiply_permutations(empty, empty).size == 0


class TestPadding:
    def test_pad_produces_permutations(self, rng):
        pa = random_subpermutation(5, 8, 3, rng)
        pb = random_subpermutation(8, 6, 4, rng)
        perm_a, perm_b, info = pad_to_permutations(pa, pb)
        perm_a.validate()
        perm_b.validate()
        assert perm_a.size == perm_b.size == 8
        assert info.num_kept_rows == 3 and info.num_kept_cols == 4

    def test_pad_strip_roundtrip_matches_dense(self, rng):
        for _ in range(15):
            n1, n2, n3 = rng.integers(1, 15, size=3)
            k1 = int(rng.integers(0, min(n1, n2) + 1))
            k2 = int(rng.integers(0, min(n2, n3) + 1))
            pa = random_subpermutation(int(n1), int(n2), k1, rng)
            pb = random_subpermutation(int(n2), int(n3), k2, rng)
            perm_a, perm_b, info = pad_to_permutations(pa, pb)
            product = multiply_dense(perm_a, perm_b).as_permutation()
            stripped = strip_padding(product, info)
            assert stripped == multiply_dense(pa, pb)


class TestMultiplyGeneral:
    def test_subpermutations_match_dense(self, rng):
        for _ in range(20):
            n1, n2, n3 = rng.integers(1, 20, size=3)
            pa = random_subpermutation(int(n1), int(n2), int(rng.integers(0, min(n1, n2) + 1)), rng)
            pb = random_subpermutation(int(n2), int(n3), int(rng.integers(0, min(n2, n3) + 1)), rng)
            assert multiply(pa, pb, base_size=4) == multiply_dense(pa, pb)

    def test_inner_mismatch_raises(self, rng):
        pa = random_subpermutation(4, 5, 2, rng)
        pb = random_subpermutation(6, 4, 3, rng)
        with pytest.raises(ValueError):
            multiply(pa, pb)

    def test_full_permutation_shortcut(self, rng):
        pa, pb = random_permutation(12, rng), random_permutation(12, rng)
        assert multiply(pa, pb) == multiply_permutations(pa, pb)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    fanin=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=100_000),
)
def test_multiply_matches_dense_property(n, fanin, seed):
    """Property: the recursive seaweed product equals the dense oracle."""
    rng = np.random.default_rng(seed)
    pa, pb = random_permutation(n, rng), random_permutation(n, rng)
    expected = multiply_dense(pa, pb).as_permutation()
    assert multiply_permutations(pa, pb, fanin=fanin, base_size=4) == expected


@settings(max_examples=30, deadline=None)
@given(
    dims=st.tuples(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
    ),
    seed=st.integers(min_value=0, max_value=100_000),
)
def test_subpermutation_multiply_property(dims, seed):
    """Property: Theorem 1.2 padding reduction is exact for any shapes."""
    n1, n2, n3 = dims
    rng = np.random.default_rng(seed)
    pa = random_subpermutation(n1, n2, int(rng.integers(0, min(n1, n2) + 1)), rng)
    pb = random_subpermutation(n2, n3, int(rng.integers(0, min(n2, n3) + 1)), rng)
    assert multiply(pa, pb, base_size=4) == multiply_dense(pa, pb)
