"""Tests for the sequential seaweed multiplication (Theorems 1.1/1.2 sequential form)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    MultiplyPlan,
    Permutation,
    ScratchArena,
    SubPermutation,
    auto_plan,
    identity_permutation,
    multiply,
    multiply_dense,
    multiply_permutations,
    multiply_permutations_iterative,
    multiply_permutations_reference,
    random_permutation,
    random_subpermutation,
    resolve_plan,
)
from repro.core.seaweed import (
    block_boundaries,
    pad_to_permutations,
    split_into_blocks,
    strip_padding,
)


class TestSplit:
    def test_block_boundaries(self):
        bounds = block_boundaries(10, 3)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert len(bounds) == 4

    def test_split_blocks_are_permutations(self, rng):
        pa, pb = random_permutation(20, rng), random_permutation(20, rng)
        split = split_into_blocks(pa, pb, 4)
        assert split.num_blocks == 4
        total = 0
        for a_blk, b_blk, rmap, cmap in zip(
            split.a_blocks, split.b_blocks, split.row_maps, split.col_maps
        ):
            a_blk.validate()
            b_blk.validate()
            assert a_blk.size == b_blk.size == len(rmap) == len(cmap)
            total += a_blk.size
        assert total == 20

    def test_row_maps_partition_rows(self, rng):
        pa, pb = random_permutation(15, rng), random_permutation(15, rng)
        split = split_into_blocks(pa, pb, 3)
        all_rows = np.concatenate(split.row_maps)
        assert sorted(all_rows.tolist()) == list(range(15))
        all_cols = np.concatenate(split.col_maps)
        assert sorted(all_cols.tolist()) == list(range(15))


class TestMultiplyPermutations:
    def test_matches_dense_small(self, rng):
        for n in (1, 2, 3, 7, 20, 45):
            pa, pb = random_permutation(n, rng), random_permutation(n, rng)
            expected = multiply_dense(pa, pb).as_permutation()
            got = multiply_permutations(pa, pb, base_size=4)
            assert got == expected

    def test_all_fanins_agree(self, rng):
        pa, pb = random_permutation(40, rng), random_permutation(40, rng)
        reference = multiply_permutations(pa, pb, fanin=2, base_size=4)
        for fanin in (3, 4, 7, 16):
            assert multiply_permutations(pa, pb, fanin=fanin, base_size=4) == reference

    def test_identity_neutral(self, rng):
        p = random_permutation(30, rng)
        ident = identity_permutation(30)
        assert multiply_permutations(p, ident, base_size=4) == p
        assert multiply_permutations(ident, p, base_size=4) == p

    def test_associativity(self, rng):
        n = 24
        a, b, c = (random_permutation(n, rng) for _ in range(3))
        left = multiply_permutations(multiply_permutations(a, b, base_size=4), c, base_size=4)
        right = multiply_permutations(a, multiply_permutations(b, c, base_size=4), base_size=4)
        assert left == right

    def test_size_mismatch(self, rng):
        with pytest.raises(ValueError):
            multiply_permutations(random_permutation(3, rng), random_permutation(4, rng))

    def test_invalid_fanin(self, rng):
        with pytest.raises(ValueError):
            multiply_permutations(
                random_permutation(4, rng), random_permutation(4, rng), fanin=1
            )

    def test_empty(self):
        empty = Permutation(np.empty(0, dtype=np.int64))
        assert multiply_permutations(empty, empty).size == 0


class TestPadding:
    def test_pad_produces_permutations(self, rng):
        pa = random_subpermutation(5, 8, 3, rng)
        pb = random_subpermutation(8, 6, 4, rng)
        perm_a, perm_b, info = pad_to_permutations(pa, pb)
        perm_a.validate()
        perm_b.validate()
        assert perm_a.size == perm_b.size == 8
        assert info.num_kept_rows == 3 and info.num_kept_cols == 4

    def test_pad_strip_roundtrip_matches_dense(self, rng):
        for _ in range(15):
            n1, n2, n3 = rng.integers(1, 15, size=3)
            k1 = int(rng.integers(0, min(n1, n2) + 1))
            k2 = int(rng.integers(0, min(n2, n3) + 1))
            pa = random_subpermutation(int(n1), int(n2), k1, rng)
            pb = random_subpermutation(int(n2), int(n3), k2, rng)
            perm_a, perm_b, info = pad_to_permutations(pa, pb)
            product = multiply_dense(perm_a, perm_b).as_permutation()
            stripped = strip_padding(product, info)
            assert stripped == multiply_dense(pa, pb)


class TestMultiplyGeneral:
    def test_subpermutations_match_dense(self, rng):
        for _ in range(20):
            n1, n2, n3 = rng.integers(1, 20, size=3)
            pa = random_subpermutation(int(n1), int(n2), int(rng.integers(0, min(n1, n2) + 1)), rng)
            pb = random_subpermutation(int(n2), int(n3), int(rng.integers(0, min(n2, n3) + 1)), rng)
            assert multiply(pa, pb, base_size=4) == multiply_dense(pa, pb)

    def test_inner_mismatch_raises(self, rng):
        pa = random_subpermutation(4, 5, 2, rng)
        pb = random_subpermutation(6, 4, 3, rng)
        with pytest.raises(ValueError):
            multiply(pa, pb)

    def test_full_permutation_shortcut(self, rng):
        pa, pb = random_permutation(12, rng), random_permutation(12, rng)
        assert multiply(pa, pb) == multiply_permutations(pa, pb)


class TestIterativeEngine:
    """The allocation-lean engine must be bit-identical to the reference."""

    def test_engine_dispatch(self, rng):
        pa, pb = random_permutation(24, rng), random_permutation(24, rng)
        via_plan = multiply_permutations(pa, pb, plan=MultiplyPlan(engine="reference"))
        assert via_plan == multiply_permutations_reference(pa, pb)
        assert multiply_permutations(pa, pb) == via_plan

    def test_identity_and_empty(self, rng):
        p = random_permutation(30, rng)
        ident = identity_permutation(30)
        assert multiply_permutations_iterative(p, ident) == p
        assert multiply_permutations_iterative(ident, p) == p
        empty = Permutation(np.empty(0, dtype=np.int64))
        assert multiply_permutations_iterative(empty, empty).size == 0

    def test_matches_reference_across_fanins(self, rng):
        for n in (1, 2, 3, 17, 40, 73):
            pa, pb = random_permutation(n, rng), random_permutation(n, rng)
            expected = multiply_permutations_reference(pa, pb, fanin=2, base_size=4)
            for fanin in (2, 3, 5, 8):
                plan = MultiplyPlan(fanin=fanin, base_size=4)
                assert multiply_permutations_iterative(pa, pb, plan) == expected

    def test_shared_arena_across_calls(self, rng):
        arena = ScratchArena()
        for _ in range(5):
            n = int(rng.integers(1, 60))
            pa, pb = random_permutation(n, rng), random_permutation(n, rng)
            got = multiply_permutations_iterative(
                pa, pb, MultiplyPlan(base_size=4), arena=arena
            )
            assert got == multiply_permutations_reference(pa, pb, base_size=4)
        assert arena.nbytes > 0

    def test_subpermutations_match_reference_engine(self, rng):
        reference_plan = MultiplyPlan(engine="reference", base_size=4)
        iterative_plan = MultiplyPlan(base_size=4)
        for _ in range(25):
            n1, n2, n3 = rng.integers(1, 18, size=3)
            pa = random_subpermutation(int(n1), int(n2), int(rng.integers(0, min(n1, n2) + 1)), rng)
            pb = random_subpermutation(int(n2), int(n3), int(rng.integers(0, min(n2, n3) + 1)), rng)
            assert multiply(pa, pb, plan=iterative_plan) == multiply(pa, pb, plan=reference_plan)

    def test_empty_subpermutation_operands(self, rng):
        pa = SubPermutation.empty(5, 7)
        pb = random_subpermutation(7, 4, 3, rng)
        assert multiply(pa, pb) == multiply_dense(pa, pb)
        assert multiply(pb.transpose(), pa.transpose()) == multiply_dense(
            pb.transpose(), pa.transpose()
        )


class TestMultiplyPlan:
    def test_resolution_and_overrides(self):
        plan = resolve_plan(None, fanin=5, base_size=20)
        assert plan.fanin == 5 and plan.base_size == 20 and plan.engine == "iterative"
        assert resolve_plan("default") == MultiplyPlan()
        assert resolve_plan(plan) is plan
        with pytest.raises(ValueError):
            resolve_plan("bogus")
        with pytest.raises(ValueError):
            MultiplyPlan(fanin=1)
        with pytest.raises(ValueError):
            MultiplyPlan(engine="other")

    def test_auto_plan_is_cached_and_valid(self):
        first = auto_plan(calibration_size=96)
        second = auto_plan(calibration_size=96)
        assert first == second  # process-wide cache
        assert first.engine == "iterative"
        assert first.fanin >= 2 and first.base_size >= 1

    def test_reference_engine_respects_dense_table_limit(self, rng):
        # dense_table_limit=0 forces every reference-engine merge onto the
        # sparse color-major path; the product must be unchanged.
        pa, pb = random_permutation(40, rng), random_permutation(40, rng)
        sparse_plan = MultiplyPlan(engine="reference", base_size=4, dense_table_limit=0)
        assert multiply_permutations(pa, pb, plan=sparse_plan) == (
            multiply_permutations_reference(pa, pb, base_size=4)
        )

    def test_plan_multiply_fn_is_picklable(self, rng):
        import pickle

        fn = MultiplyPlan(fanin=3, base_size=8).multiply_fn()
        clone = pickle.loads(pickle.dumps(fn))
        pa, pb = random_permutation(20, rng), random_permutation(20, rng)
        assert clone(pa, pb) == multiply_permutations_reference(pa, pb)


class TestEngineAcrossBackends:
    def test_backends_bit_identical_with_plan(self, rng):
        """serial/thread/process leaf builds with the iterative engine agree."""
        from repro.streaming import StreamingLIS

        stream = rng.random(300)
        roots = []
        for backend in ("serial", "thread", "process"):
            session = StreamingLIS(
                window=256, leaf_size=32, backend=backend, plan=MultiplyPlan(base_size=16)
            )
            session.push(stream)
            roots.append(session.to_semilocal().matrix)
        assert roots[0] == roots[1] == roots[2]


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    fanin=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=100_000),
)
def test_multiply_matches_dense_property(n, fanin, seed):
    """Property: the recursive seaweed product equals the dense oracle."""
    rng = np.random.default_rng(seed)
    pa, pb = random_permutation(n, rng), random_permutation(n, rng)
    expected = multiply_dense(pa, pb).as_permutation()
    assert multiply_permutations(pa, pb, fanin=fanin, base_size=4) == expected


@settings(max_examples=30, deadline=None)
@given(
    dims=st.tuples(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
    ),
    seed=st.integers(min_value=0, max_value=100_000),
)
def test_subpermutation_multiply_property(dims, seed):
    """Property: Theorem 1.2 padding reduction is exact for any shapes."""
    n1, n2, n3 = dims
    rng = np.random.default_rng(seed)
    pa = random_subpermutation(n1, n2, int(rng.integers(0, min(n1, n2) + 1)), rng)
    pb = random_subpermutation(n2, n3, int(rng.integers(0, min(n2, n3) + 1)), rng)
    assert multiply(pa, pb, base_size=4) == multiply_dense(pa, pb)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=48),
    fanin=st.integers(min_value=2, max_value=8),
    base_size=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=100_000),
)
def test_iterative_engine_bit_identity_property(n, fanin, base_size, seed):
    """Property: the iterative engine equals the retained recursive oracle
    for every fan-in and crossover (full-permutation shapes)."""
    rng = np.random.default_rng(seed)
    pa, pb = random_permutation(n, rng), random_permutation(n, rng)
    expected = multiply_permutations_reference(pa, pb, fanin=fanin, base_size=base_size)
    plan = MultiplyPlan(fanin=fanin, base_size=base_size)
    assert multiply_permutations_iterative(pa, pb, plan) == expected


@settings(max_examples=30, deadline=None)
@given(
    dims=st.tuples(
        st.integers(min_value=1, max_value=14),
        st.integers(min_value=1, max_value=14),
        st.integers(min_value=1, max_value=14),
    ),
    fanin=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=100_000),
)
def test_iterative_engine_subpermutation_identity_property(dims, fanin, seed):
    """Property: engine bit-identity holds through the §4.1 padding reduction
    (rectangular, empty and sub-permutation shapes)."""
    n1, n2, n3 = dims
    rng = np.random.default_rng(seed)
    pa = random_subpermutation(n1, n2, int(rng.integers(0, min(n1, n2) + 1)), rng)
    pb = random_subpermutation(n2, n3, int(rng.integers(0, min(n2, n3) + 1)), rng)
    iterative = multiply(pa, pb, plan=MultiplyPlan(fanin=fanin, base_size=4))
    reference = multiply(
        pa, pb, plan=MultiplyPlan(fanin=fanin, base_size=4, engine="reference")
    )
    assert iterative == reference == multiply_dense(pa, pb)
