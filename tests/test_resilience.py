"""Tests for the resilience layer (:mod:`repro.resilience`) and its wiring.

Three tiers:

* property tests with injected clocks/rngs — jitter bounds, retry-budget
  exhaustion, the breaker state machine, deadline math.  No sleeps.
* router integration — hung-worker kill/restart, pipe resync after a
  deadline-abandoned call, degraded serving while a breaker is open, all
  against the real worker processes.
* chaos end-to-end — the HTTP server under a seeded :class:`FaultPlan`
  injecting worker hangs, crashes and spill corruption: every request is
  answered (possibly ``degraded``) or fails fast with a structured 5xx,
  non-degraded answers match the serial oracle bit-for-bit, and the
  breaker/fault/deadline counters reconcile between ``/metrics`` and
  ``/stats``.
"""

import contextvars
import json
import pickle
import random
import threading
import time

import pytest

from repro.obs.alerts import AlertEmitter
from repro.obs.slo import SLOEngine, SLObjective, WINDOWS
from repro.resilience import (
    BREAKER_STATE_CODES,
    BreakerConfig,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultRule,
    InjectedFault,
    RetryBudget,
    RetryPolicy,
    current_deadline,
    deadline_scope,
    install_plan,
    plan_from_spec,
    uninstall_plan,
)
from repro.server import get_json, post_json, start_server
from repro.service import IndexCache, QueryService, parse_requests_document
from repro.service.sharding import ShardRouter, ShardWorkerHang


class FakeClock:
    """An injectable monotonic clock the tests advance by hand."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(autouse=True)
def _no_global_fault_plan():
    """Fault plans are process-global; never leak one across tests."""
    yield
    uninstall_plan()


# ------------------------------------------------------------------ deadline
class TestDeadline:
    def test_budget_math_with_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(250.0, clock=clock)
        assert deadline.remaining() == pytest.approx(0.25)
        assert not deadline.expired
        clock.advance(0.2)
        assert deadline.remaining() == pytest.approx(0.05)
        clock.advance(0.1)
        assert deadline.expired
        assert deadline.remaining() == 0.0  # never negative

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline.after_ms(0.0)
        with pytest.raises(ValueError):
            Deadline.after_ms(-5.0)

    def test_tighten_keeps_the_stricter_deadline(self):
        clock = FakeClock()
        loose = Deadline.after_ms(1000.0, clock=clock)
        tightened = loose.tighten_ms(100.0)
        assert tightened.remaining() == pytest.approx(0.1)
        # Tightening with a *looser* budget is a no-op.
        assert loose.tighten_ms(5000.0) is loose

    def test_scope_installs_and_restores(self):
        assert current_deadline() is None
        deadline = Deadline.after_ms(100.0, clock=FakeClock())
        with deadline_scope(deadline):
            assert current_deadline() is deadline
            with deadline_scope(None):  # None is a transparent no-op
                assert current_deadline() is deadline
        assert current_deadline() is None

    def test_scope_propagates_through_context_copies(self):
        """The executor-thread hop pattern: context copies carry the budget."""
        deadline = Deadline.after_ms(100.0, clock=FakeClock())
        seen = {}

        def probe():
            seen["deadline"] = current_deadline()

        with deadline_scope(deadline):
            ctx = contextvars.copy_context()
        thread = threading.Thread(target=ctx.run, args=(probe,))
        thread.start()
        thread.join()
        assert seen["deadline"] is deadline


# ------------------------------------------------------------ retry policy
class TestRetryPolicy:
    def test_jitter_bounds_hold_for_many_seeds(self):
        """Property: every draw is in [base, min(cap, max(base, prev*mult))]."""
        policy = RetryPolicy(base_seconds=0.01, cap_seconds=1.0, multiplier=3.0)
        for seed in range(50):
            rng = random.Random(seed)
            previous = 0.0
            for _ in range(20):
                draw = policy.backoff(previous, rng)
                upper = min(
                    policy.cap_seconds,
                    max(policy.base_seconds, previous * policy.multiplier),
                )
                assert policy.base_seconds <= draw or draw == upper
                assert draw <= policy.cap_seconds
                assert draw >= min(policy.base_seconds, upper)
                assert draw <= max(policy.base_seconds, upper)
                previous = draw

    def test_first_backoff_draws_from_base(self):
        policy = RetryPolicy(base_seconds=0.05, cap_seconds=2.0, multiplier=3.0)
        rng = random.Random(7)
        # previous=0 → uniform(base, base) == base exactly.
        assert policy.backoff(0.0, rng) == pytest.approx(policy.base_seconds)

    def test_cap_bounds_runaway_growth(self):
        policy = RetryPolicy(base_seconds=0.5, cap_seconds=1.0, multiplier=100.0)
        rng = random.Random(0)
        previous = 0.5
        for _ in range(10):
            previous = policy.backoff(previous, rng)
            assert previous <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_seconds=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_seconds=1.0, cap_seconds=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestRetryBudget:
    def test_exhaustion_and_refill(self):
        budget = RetryBudget(capacity=3.0, refill_per_success=0.5)
        assert budget.try_spend() and budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()  # bucket empty
        assert budget.exhausted == 1
        budget.credit()  # 0.5 tokens: still under one whole token
        assert not budget.try_spend()
        budget.credit()  # 1.0 token
        assert budget.try_spend()
        assert budget.spent == 4

    def test_credit_caps_at_capacity(self):
        budget = RetryBudget(capacity=2.0, refill_per_success=5.0)
        budget.credit()
        assert budget.tokens == 2.0

    def test_stats_shape(self):
        stats = RetryBudget(capacity=4.0).stats()
        assert stats["capacity"] == 4.0
        assert stats["tokens"] == 4.0
        assert stats["spent"] == 0 and stats["exhausted"] == 0


# ---------------------------------------------------------- circuit breaker
class TestCircuitBreaker:
    def _breaker(self, clock, **overrides):
        defaults = dict(
            failure_threshold=3,
            error_rate_threshold=0.5,
            window=10,
            min_window_calls=5,
            cooldown_seconds=10.0,
        )
        defaults.update(overrides)
        return CircuitBreaker(BreakerConfig(**defaults), name="t", clock=clock)

    def test_consecutive_failures_trip(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        transitions = []
        breaker._on_transition = lambda name, old, new: transitions.append((old, new))
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert transitions == [("closed", "open")]
        assert not breaker.allow()
        assert breaker.stats()["rejected_calls"] == 1

    def test_success_resets_the_consecutive_count(self):
        # Disarm the windowed trip so only the consecutive counter matters.
        breaker = self._breaker(FakeClock(), min_window_calls=100)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_window_error_rate_trips_after_min_calls(self):
        breaker = self._breaker(FakeClock())
        # Alternate success/failure: never 3 consecutive, but a 50% rate.
        for _ in range(2):
            breaker.record_success()
            breaker.record_failure()
        assert breaker.state == "closed"  # only 4 window calls, min is 5
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "open"

    def test_cold_breaker_cannot_window_trip(self):
        breaker = self._breaker(FakeClock(), min_window_calls=10)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_recloses(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.trip()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # single probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.trip()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.0)  # cooldown restarted at the probe failure
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()

    def test_release_probe_unwedges_a_half_open_breaker(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.trip()
        clock.advance(10.0)
        assert breaker.allow()
        # The probe's caller hit its own deadline: health-neutral outcome.
        breaker.release_probe()
        assert breaker.state == "half_open"
        assert breaker.allow()  # slot is free again, no cooldown owed

    def test_transition_counters(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.trip()
        clock.advance(10.0)
        breaker.allow()
        breaker.record_success()
        stats = breaker.stats()
        assert stats["transitions"] == {
            "closed->open": 1,
            "open->half_open": 1,
            "half_open->closed": 1,
        }
        assert stats["opened_total"] == 1

    def test_state_codes_cover_every_state(self):
        assert BREAKER_STATE_CODES == {"closed": 0, "half_open": 1, "open": 2}

    def test_reset_clears_failure_memory(self):
        breaker = self._breaker(FakeClock())
        breaker.trip()
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.stats()["consecutive_failures"] == 0


# ------------------------------------------------------------- fault plans
class TestFaultPlan:
    def test_hits_are_one_based_and_deterministic(self):
        plan = FaultPlan([FaultRule("index.build", "error", hits=[2, 4])])
        assert plan.fire("index.build", {}) is None
        with pytest.raises(InjectedFault):
            plan.fire("index.build", {})
        assert plan.fire("index.build", {}) is None
        with pytest.raises(InjectedFault):
            plan.fire("index.build", {})
        assert plan.fire("index.build", {}) is None

    def test_probability_schedule_replays_per_seed(self):
        def schedule(seed):
            plan = FaultPlan(
                [FaultRule("pipe.send", "corrupt", probability=0.5)], seed=seed
            )
            return [plan.fire("pipe.send", {}) is not None for _ in range(64)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)  # seed actually matters

    def test_match_filters_on_context(self):
        plan = FaultPlan(
            [FaultRule("worker.dispatch", "error", hits=[1], match={"shard": 1})]
        )
        assert plan.fire("worker.dispatch", {"shard": 0}) is None
        with pytest.raises(InjectedFault):
            plan.fire("worker.dispatch", {"shard": 1})

    def test_max_fires_bounds_a_probability_rule(self):
        plan = FaultPlan(
            [FaultRule("pipe.recv", "corrupt", probability=1.0, max_fires=2)]
        )
        fired = sum(plan.fire("pipe.recv", {}) is not None for _ in range(10))
        assert fired == 2

    def test_delay_uses_the_injected_sleep(self):
        plan = FaultPlan([FaultRule("index.build", "delay", hits=[1], delay_ms=250)])
        sleeps = []
        plan._sleep = sleeps.append
        assert plan.fire("index.build", {}) == "delay"
        assert sleeps == [0.25]

    def test_pickle_round_trip_preserves_the_schedule(self):
        plan = FaultPlan(
            [FaultRule("worker.dispatch", "error", hits=[3])], seed=5
        )
        plan.fire("worker.dispatch", {})
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.fire("worker.dispatch", {}) is None  # hit 2
        with pytest.raises(InjectedFault):
            clone.fire("worker.dispatch", {})  # hit 3

    def test_plan_from_spec_inline_and_file(self, tmp_path):
        document = {"seed": 3, "rules": [{"site": "index.build", "kind": "error", "hits": [1]}]}
        inline = plan_from_spec(json.dumps(document))
        assert inline.seed == 3 and inline.rules[0].kind == "error"
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(document))
        from_file = plan_from_spec(str(path))
        assert from_file.rules[0].site == "index.build"

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultRule("nope.site", "error", hits=[1])
        with pytest.raises(ValueError):
            FaultRule("index.build", "nope", hits=[1])
        with pytest.raises(ValueError):
            FaultRule("index.build", "error")  # needs hits or probability
        with pytest.raises(ValueError):
            FaultRule("index.build", "error", probability=1.5)

    def test_stats_counts_hits_and_fires(self):
        plan = FaultPlan([FaultRule("index.build", "corrupt", hits=[2])])
        plan.fire("index.build", {})
        plan.fire("index.build", {})
        stats = plan.stats()
        assert stats["fired_total"] == 1
        assert stats["rules"][0]["hit_count"] == 2
        assert stats["rules"][0]["fired"] == 1


# ------------------------------------------------------- SLO history + alerts
class TestSLOHistory:
    def _snapshot(self, good, total):
        return {
            "repro_http_requests_total": {
                "type": "counter",
                "samples": [
                    [[["method", "POST"], ["route", "/v2/batch"], ["status", "200"]], good],
                    [[["method", "POST"], ["route", "/v2/batch"], ["status", "500"]], total - good],
                ],
            }
        }

    def _objective(self):
        return SLObjective(
            name="avail", kind="availability", target=0.99, route="/v2/batch"
        )

    def test_history_persists_and_reloads(self, tmp_path):
        path = str(tmp_path / "slo.jsonl")
        clock = FakeClock(start=100000.0)
        engine = SLOEngine([self._objective()], clock=clock, history_path=path)
        engine.record(self._snapshot(90, 100))
        clock.advance(60.0)
        engine.record(self._snapshot(180, 200))

        reloaded = SLOEngine([self._objective()], clock=clock, history_path=path)
        assert len(reloaded._history) == 2
        assert reloaded._history[-1][1]["avail"] == (180.0, 200.0)

    def test_offsets_keep_the_series_monotone_across_restart(self, tmp_path):
        path = str(tmp_path / "slo.jsonl")
        clock = FakeClock(start=100000.0)
        engine = SLOEngine([self._objective()], clock=clock, history_path=path)
        engine.record(self._snapshot(500, 600))

        # "Restart": fresh process counters start from zero again.
        clock.advance(30.0)
        restarted = SLOEngine([self._objective()], clock=clock, history_path=path)
        restarted.record(self._snapshot(10, 10))
        times_totals = list(restarted._history)
        assert times_totals[-1][1]["avail"] == (510.0, 610.0)  # offset applied
        # Once the pre-restart row sits at the 5m edge it becomes the
        # window baseline: the delta over the restart is the fresh traffic
        # only — no negative jump, no double count.
        clock.advance(280.0)
        doc = restarted.evaluate(self._snapshot(10, 10))
        window = doc["objectives"][0]["windows"]["5m"]
        assert window["total"] == pytest.approx(10.0)
        assert window["good"] == pytest.approx(10.0)

    def test_old_rows_pruned_on_load(self, tmp_path):
        path = tmp_path / "slo.jsonl"
        clock = FakeClock(start=1000000.0)
        stale_ts = clock.now - WINDOWS[-1][1] - 3600.0
        rows = [
            {"ts": stale_ts, "totals": {"avail": [1, 2]}},
            {"ts": clock.now - 10.0, "totals": {"avail": [3, 4]}},
            "not json at all",
        ]
        path.write_text(
            "\n".join(r if isinstance(r, str) else json.dumps(r) for r in rows) + "\n"
        )
        engine = SLOEngine([self._objective()], clock=clock, history_path=str(path))
        assert len(engine._history) == 1
        assert engine._history[0][1]["avail"] == (3.0, 4.0)

    def test_no_history_path_means_no_files(self, tmp_path):
        engine = SLOEngine([self._objective()], clock=FakeClock())
        engine.record(self._snapshot(1, 1))
        assert list(tmp_path.iterdir()) == []


class TestAlertEmitter:
    def _doc(self, severity):
        return {
            "objectives": [
                {
                    "name": "avail",
                    "alerts": {"severity": severity},
                    "windows": {"5m": {"burn_rate": 20.0}},
                }
            ]
        }

    def test_transition_fires_and_steady_state_dedups(self):
        clock = FakeClock()
        seen = []
        emitter = AlertEmitter(cooldown_seconds=60.0, sink=seen.append, clock=clock)
        assert emitter.consume(self._doc("ok")) == []  # healthy start: quiet
        fired = emitter.consume(self._doc("page"))
        assert len(fired) == 1 and fired[0]["event"] == "fired"
        clock.advance(10.0)
        assert emitter.consume(self._doc("page")) == []  # within cooldown
        assert emitter.suppressed_total == 1
        clock.advance(60.0)
        reminder = emitter.consume(self._doc("page"))
        assert len(reminder) == 1 and reminder[0]["event"] == "reminder"
        assert len(seen) == 2

    def test_severity_change_bypasses_cooldown(self):
        clock = FakeClock()
        emitter = AlertEmitter(cooldown_seconds=600.0, sink=lambda a: None, clock=clock)
        emitter.consume(self._doc("page"))
        clock.advance(1.0)
        changed = emitter.consume(self._doc("ticket"))
        assert len(changed) == 1 and changed[0]["severity"] == "ticket"

    def test_recovery_emits_resolved_exactly_once(self):
        clock = FakeClock()
        events = []
        emitter = AlertEmitter(
            cooldown_seconds=0.0, sink=lambda a: events.append(a["event"]), clock=clock
        )
        emitter.consume(self._doc("page"))
        emitter.consume(self._doc("ok"))
        emitter.consume(self._doc("ok"))
        emitter.consume(self._doc("ok"))
        assert events == ["fired", "resolved"]
        assert emitter.stats()["active"] == {}

    def test_webhook_failure_is_counted_not_raised(self):
        emitter = AlertEmitter(
            cooldown_seconds=0.0,
            sink=lambda a: None,
            webhook_url="http://127.0.0.1:1/unroutable",
            webhook_timeout_seconds=0.2,
        )
        emitter.consume(self._doc("page"))
        assert emitter.webhook_errors == 1


# ----------------------------------------------------- router integration
def _requests_for(document):
    _, requests = parse_requests_document(document)
    return requests


_BATCH = {
    "requests": [
        {"op": "lis_length", "id": "a", "workload": "random", "n": 256, "seed": 1},
        {"op": "lis_length", "id": "b", "workload": "random", "n": 256, "seed": 2},
        {"op": "lcs_length", "id": "c", "string_workload": "correlated_pair", "n": 64, "seed": 3},
        {"op": "lis_length", "id": "d", "workload": "random", "n": 256, "seed": 4},
    ]
}


class TestRouterResilience:
    def test_hung_worker_is_killed_and_restarted(self):
        # Hit counters are per-process: dispatch 2 of the *first* worker
        # hangs; the restarted incarnation's dispatch 1 is clean, so the
        # retry lands.
        plan = FaultPlan(
            [FaultRule("worker.dispatch", "hang", hits=[2], delay_ms=30000)]
        )
        with ShardRouter(1, worker_timeout=0.4, fault_plan=plan) as router:
            if router.serial_fallback:
                pytest.skip("no process workers in this environment")
            router.submit(_requests_for(_BATCH))  # dispatch 1: clean
            result = router.submit(_requests_for(_BATCH))
            assert [o.result for o in result.outcomes] == [
                o.result for o in QueryService().submit(_requests_for(_BATCH)).outcomes
            ]
            stats = router.stats()
            assert stats["resilience"]["hangs"] >= 1
            assert stats["restarts"] >= 1
            # The hang surfaces on the per-shard collector series too.
            series = router._collect_shard_series()
            assert series["repro_shard_hangs_total"]["samples"][0][1] >= 1

    def test_deadline_abandons_call_but_worker_survives(self):
        # Dispatch hit 2 stalls 600 ms; the caller's 150 ms budget dies at
        # the pipe wait, the worker is NOT killed, and the *next* call
        # drains the stale answer and gets the right result.
        plan = FaultPlan(
            [FaultRule("worker.dispatch", "delay", hits=[2], delay_ms=600)]
        )
        with ShardRouter(1, worker_timeout=30.0, fault_plan=plan) as router:
            if router.serial_fallback:
                pytest.skip("no process workers in this environment")
            requests = _requests_for(_BATCH)
            router.submit(requests)  # hit 1: clean, warms the cache
            with deadline_scope(Deadline.after_ms(150.0)):
                with pytest.raises(DeadlineExceeded):
                    router.submit(requests)
            result = router.submit(requests)  # resyncs past the stale answer
            oracle = QueryService().submit(requests)
            assert [o.result for o in result.outcomes] == [
                o.result for o in oracle.outcomes
            ]
            assert router.stats()["restarts"] == 0  # abandoned, not killed

    def test_expired_deadline_refuses_dispatch(self):
        clock = FakeClock()
        dead = Deadline.after_ms(10.0, clock=clock)
        clock.advance(1.0)
        with ShardRouter(2, force_serial=True) as router:
            with deadline_scope(dead):
                with pytest.raises(DeadlineExceeded) as excinfo:
                    router.submit(_requests_for(_BATCH))
            assert excinfo.value.stage == "router"

    def test_open_breaker_serves_degraded_and_matches_oracle(self):
        with ShardRouter(2, force_serial=True) as router:
            requests = _requests_for(_BATCH)
            baseline = router.submit(requests)
            for breaker in router._breakers:
                breaker.trip()
            degraded = router.submit(requests)
            assert all(o.degraded for o in degraded.outcomes)
            assert not any(o.degraded for o in baseline.outcomes)
            # Stale-tolerant but still *correct* here: the fallback runs the
            # same deterministic computation.
            assert [o.result for o in degraded.outcomes] == [
                o.result for o in baseline.outcomes
            ]
            stats = router.stats()
            assert stats["resilience"]["degraded_requests"] == len(requests)
            assert all(
                doc["state"] == "open"
                for doc in stats["resilience"]["breakers"].values()
            )
            series = router._collect_shard_series()
            assert all(
                sample[1] == BREAKER_STATE_CODES["open"]
                for sample in series["repro_breaker_state"]["samples"]
            )

    def test_breaker_recloses_after_cooldown_probe(self):
        clock = FakeClock()
        with ShardRouter(1, force_serial=True) as router:
            breaker = CircuitBreaker(
                BreakerConfig(cooldown_seconds=5.0),
                name="0",
                clock=clock,
                on_transition=router._note_breaker_transition,
            )
            router._breakers[0] = breaker
            requests = _requests_for(_BATCH)
            breaker.trip()
            degraded = router.submit(requests)
            assert all(o.degraded for o in degraded.outcomes)
            clock.advance(5.0)
            probed = router.submit(requests)  # the half-open probe succeeds
            assert not any(o.degraded for o in probed.outcomes)
            assert breaker.state == "closed"

    def test_crash_retries_use_the_budget(self):
        # A worker that crashes on its 2nd dispatch: one retry, then the
        # restarted incarnation answers.  The retry must have spent budget.
        plan = FaultPlan([FaultRule("worker.dispatch", "crash", hits=[2])])
        with ShardRouter(1, fault_plan=plan) as router:
            if router.serial_fallback:
                pytest.skip("no process workers in this environment")
            requests = _requests_for(_BATCH)
            router.submit(requests)  # dispatch 1: clean
            result = router.submit(requests)  # dispatch 2: crash → retry
            oracle = QueryService().submit(requests)
            assert [o.result for o in result.outcomes] == [
                o.result for o in oracle.outcomes
            ]
            stats = router.stats()
            assert stats["retries"] >= 1
            assert stats["resilience"]["retry_budget"]["spent"] >= 1

    def test_retry_budget_exhaustion_fails_fast(self):
        plan = FaultPlan(
            [FaultRule("worker.dispatch", "crash", probability=1.0)]
        )
        budget = RetryBudget(capacity=1.0, refill_per_success=0.0)
        with ShardRouter(
            1, retry_limit=5, retry_budget=budget, fault_plan=plan,
            retry_policy=RetryPolicy(base_seconds=0.001, cap_seconds=0.002),
        ) as router:
            if router.serial_fallback:
                pytest.skip("no process workers in this environment")
            with pytest.raises(RuntimeError, match="retry budget"):
                router.submit(_requests_for(_BATCH))
            assert budget.exhausted >= 1

    def test_registry_reset_gives_restarted_workers_a_clean_slate(self):
        """Fork copies the parent registry; reset() must zero it in place.

        Module-level metric references must survive (a replaced registry
        would orphan them) and collectors must be dropped so a restarted
        worker never re-exports the parent router's per-shard series.
        """
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        counter = registry.counter("t_total", labelnames=("shard",))
        hist = registry.histogram("t_seconds")
        counter.inc(5, shard="0")
        hist.observe(0.1)
        registry.register_collector(lambda: {"t_extra": {"type": "counter", "samples": [[[], 1]]}})
        assert registry.snapshot()["t_total"]["samples"]
        registry.reset()
        snap = registry.snapshot()
        assert snap["t_total"]["samples"] == []
        assert snap["t_seconds"]["samples"] == []
        assert "t_extra" not in snap  # collector dropped
        counter.inc(shard="1")  # the pre-reset reference still works
        assert registry.snapshot()["t_total"]["samples"] == [[[["shard", "1"]], 1]]

    def test_stats_resilience_shape(self):
        with ShardRouter(2, force_serial=True) as router:
            doc = router.stats()["resilience"]
            assert doc["worker_timeout_seconds"] > 0
            assert set(doc["retry_policy"]) == {
                "base_seconds", "cap_seconds", "multiplier",
            }
            assert doc["retry_budget"]["capacity"] > 0
            assert doc["hangs"] == 0 and doc["degraded_requests"] == 0
            assert set(doc["breakers"]) == {"0", "1"}


# ------------------------------------------------------------ HTTP deadlines
class TestHttpDeadlines:
    def test_expired_batch_is_a_structured_504(self):
        plan = FaultPlan([FaultRule("index.build", "delay", probability=1.0, delay_ms=700)])
        install_plan(plan)
        try:
            handle = start_server(QueryService(), default_deadline_ms=150.0)
            try:
                status, _, body = post_json(handle.url + "/v2/batch", _BATCH)
                assert status == 504
                assert body["ok"] == 0
                assert body["deadline_expired"] == len(_BATCH["requests"])
                for entry in body["results"]:
                    assert entry["status"] == "error"
                    assert entry["deadline_exceeded"] is True
                    assert "deadline" in entry["error"]
                status, _, stats = get_json(handle.url + "/stats")
                assert stats["requests"]["deadline_expired"] == len(_BATCH["requests"])
                # The stage-labelled counter is on /metrics.
                import urllib.request

                with urllib.request.urlopen(handle.url + "/metrics") as resp:
                    text = resp.read().decode()
                assert "repro_deadline_expired_total" in text
            finally:
                handle.stop()
        finally:
            uninstall_plan()

    def test_header_budget_overrides_the_default(self):
        handle = start_server(QueryService(), default_deadline_ms=1.0)
        try:
            status, _, body = post_json(
                handle.url + "/v2/batch",
                _BATCH,
                headers={"X-Repro-Deadline-Ms": "30000"},
            )
            assert status == 200
            assert body["ok"] == len(_BATCH["requests"])
            assert body["deadline_expired"] == 0
        finally:
            handle.stop()

    def test_document_deadline_can_only_tighten(self):
        handle = start_server(QueryService())
        try:
            document = dict(_BATCH)
            document["deadline_ms"] = 30000
            status, _, body = post_json(handle.url + "/v2/batch", document)
            assert status == 200 and body["ok"] == len(_BATCH["requests"])

            status, _, body = post_json(
                handle.url + "/v2/batch", {**_BATCH, "deadline_ms": -5}
            )
            assert status == 400
        finally:
            handle.stop()

    def test_bad_header_is_a_400(self):
        handle = start_server(QueryService())
        try:
            status, _, body = post_json(
                handle.url + "/v2/batch",
                _BATCH,
                headers={"X-Repro-Deadline-Ms": "soon"},
            )
            assert status == 400 and "X-Repro-Deadline-Ms" in body["error"]
        finally:
            handle.stop()


# --------------------------------------------------------------- chaos e2e
class TestChaosEndToEnd:
    def test_hang_crash_and_spill_corruption_never_drop_a_request(self, tmp_path):
        """The acceptance scenario: seeded chaos, zero unanswered requests.

        A two-shard router with a byte-starved spilling cache runs under a
        plan injecting a worker hang, a worker crash and spill-file
        corruption.  Every request over HTTP must come back ``ok``
        (possibly ``degraded``) or as a structured error before its
        deadline — and every non-degraded answer must match the serial
        oracle bit-for-bit.
        """
        plan = FaultPlan(
            [
                FaultRule("worker.dispatch", "hang", hits=[3], delay_ms=30000),
                FaultRule("worker.dispatch", "crash", hits=[6]),
                FaultRule("cache.spill_load", "corrupt", probability=0.5),
            ],
            seed=42,
        )
        router = ShardRouter(
            2,
            cache_bytes=1,  # every index spills: the corrupt site gets traffic
            spill_dir=str(tmp_path / "spill"),
            worker_timeout=0.5,
            fault_plan=plan,
            retry_policy=RetryPolicy(base_seconds=0.01, cap_seconds=0.05),
        )
        if router.serial_fallback:
            router.close()
            pytest.skip("no process workers in this environment")
        handle = start_server(router)
        oracle = QueryService()
        try:
            documents = []
            for round_index in range(6):
                documents.append(
                    {
                        "requests": [
                            {
                                "op": "lis_length",
                                "id": f"r{round_index}-{i}",
                                "workload": "random",
                                "n": 192 + 32 * i,
                                "seed": i,
                            }
                            for i in range(4)
                        ]
                    }
                )
            answered = 0
            for document in documents:
                status, _, body = post_json(
                    handle.url + "/v2/batch",
                    document,
                    headers={"X-Repro-Deadline-Ms": "30000"},
                    timeout=60.0,
                )
                assert status in (200, 504), body
                assert len(body["results"]) == len(document["requests"])
                expected = [
                    o.result for o in oracle.submit(_requests_for(document)).outcomes
                ]
                for entry, want in zip(body["results"], expected):
                    assert entry is not None, "silently dropped request"
                    answered += 1
                    if entry["status"] == "ok" and not entry.get("degraded"):
                        assert entry["result"] == want, entry["id"]
                    elif entry["status"] == "error":
                        assert entry["error"], entry  # structured, not empty
            assert answered == sum(len(d["requests"]) for d in documents)

            status, _, stats = get_json(handle.url + "/stats")
            resilience = stats["service"]["resilience"]
            # The parent's plan copy never fires (faults fire in the worker
            # processes) but the installed plan is visible on /stats.
            assert resilience.get("fault_plan") is not None
            assert stats["service"]["restarts"] >= 1  # the hang/crash hit home
            assert resilience["hangs"] >= 1

            import urllib.request

            with urllib.request.urlopen(handle.url + "/metrics") as resp:
                text = resp.read().decode()
            assert "repro_breaker_state" in text
            # Worker-side fire counts reach the merged exposition through
            # the per-shard registry snapshots.
            fired = sum(
                float(line.rsplit(None, 1)[1])
                for line in text.splitlines()
                if line.startswith("repro_faults_injected_total{")
            )
            assert fired >= 1.0
            # /metrics and /stats reconcile: the per-shard hang series sums
            # to the stats() aggregate.
            hangs = sum(
                float(line.rsplit(None, 1)[1])
                for line in text.splitlines()
                if line.startswith("repro_shard_hangs_total{")
            )
            assert hangs == resilience["hangs"]
        finally:
            handle.stop()
