"""Tests for the experiment-runner subsystem (`repro.experiments`)."""

import json

import pytest

from repro.analysis import to_jsonable
from repro.experiments import (
    SCHEMA_ID,
    SCHEMA_VERSION,
    ArtifactError,
    ExperimentSpec,
    all_specs,
    expand_grid,
    get_spec,
    load_artifact,
    register_spec,
    result_to_artifact,
    run_experiment,
    spec_names,
    validate_artifact,
    write_artifact,
)
from repro.experiments.cli import main as cli_main
from repro.lis import mpc_lis_length
from repro.mpc import MPCCluster
from repro.workloads import (
    make_sequence,
    sequence_workload,
    sequence_workload_names,
    string_workload_names,
)


# ----------------------------------------------------------------- registry
def test_registry_has_all_builtin_experiments():
    names = spec_names()
    assert len(names) >= 8
    for expected in (
        "table1",
        "multiply_rounds",
        "scalability_delta",
        "lis_rounds",
        "sequential",
        "lcs",
        "communication",
        "fanin_ablation",
        "space_overhead",
        "backend_wallclock",
        "service_throughput",
    ):
        assert expected in names


def test_get_spec_roundtrip_and_unknown():
    spec = get_spec("table1")
    assert spec.name == "table1"
    assert spec in all_specs()
    with pytest.raises(KeyError, match="unknown experiment"):
        get_spec("definitely_not_registered")


def test_register_duplicate_name_rejected():
    spec = get_spec("table1")
    with pytest.raises(ValueError, match="already registered"):
        register_spec(spec)


# ------------------------------------------------------------ grid expansion
def test_expand_grid_cartesian_product_in_order():
    points = expand_grid({"a": [1, 2], "b": ["x", "y"]})
    assert points == [
        {"a": 1, "b": "x"},
        {"a": 1, "b": "y"},
        {"a": 2, "b": "x"},
        {"a": 2, "b": "y"},
    ]


def test_expand_grid_empty_grid_is_single_point():
    assert expand_grid({}) == [{}]


def test_effective_grid_overrides_and_typo_rejection():
    spec = get_spec("table1")
    grid = spec.effective_grid(overrides={"delta": [0.5]})
    assert grid["delta"] == [0.5]
    assert grid["algorithm"] == list(spec.grid["algorithm"])
    with pytest.raises(KeyError, match="no grid parameter"):
        spec.effective_grid(overrides={"detla": [0.5]})


# -------------------------------------------------------------- quick subset
def test_quick_run_uses_reduced_grid_and_fixed():
    spec = get_spec("multiply_rounds")
    quick_grid = spec.effective_grid(quick=True)
    assert len(expand_grid(quick_grid)) < len(expand_grid(spec.effective_grid()))

    table1 = get_spec("table1")
    assert table1.effective_fixed(quick=True)["n"] < table1.effective_fixed()["n"]
    assert table1.effective_grid(quick=True) == table1.effective_grid()


def _tiny_spec(name, point, **kwargs):
    defaults = dict(
        name=name,
        title=name,
        claim="test",
        grid={"x": [1, 2, 3]},
        point=point,
        columns=["x", "y"],
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


def _double(x):
    return {"y": 2 * x}


def test_runner_executes_every_grid_point_without_registration():
    spec = _tiny_spec("tiny_double", _double)
    result = run_experiment(spec)
    assert [point.params for point in result.points] == [{"x": 1}, {"x": 2}, {"x": 3}]
    assert [point.metrics["y"] for point in result.points] == [2, 4, 6]
    table = result.to_table()
    assert table.splitlines()[0].split() == ["x", "y"]


def test_runner_checks_failure_propagates():
    def bad_check(points):
        assert False, "intentional"

    spec = _tiny_spec("tiny_failing", _double, checks=bad_check)
    with pytest.raises(AssertionError, match="intentional"):
        run_experiment(spec)
    result = run_experiment(spec, run_checks=False)
    assert result.checks_passed is None

    recorded = run_experiment(spec, raise_on_check_failure=False)
    assert recorded.checks_passed is False
    assert "intentional" in recorded.check_error
    artifact = result_to_artifact(recorded)
    assert artifact["checks_passed"] is False
    assert "intentional" in artifact["check_error"]


# ------------------------------------------------------- workload registry
def test_workload_registry_names_and_lookup():
    assert set(sequence_workload_names()) >= {"random", "planted", "decreasing"}
    assert set(string_workload_names()) == {"random_pair", "correlated_pair"}
    seq = make_sequence("decreasing", 16)
    assert list(seq) == list(range(15, -1, -1))
    assert sequence_workload("random") is not None
    with pytest.raises(KeyError, match="unknown sequence workload"):
        sequence_workload("nope")


# ------------------------------------------------------- JSON serialization
def test_cluster_stats_summary_json_roundtrip():
    cluster = MPCCluster(256, delta=0.5)
    seq = make_sequence("random", 256, seed=0)
    mpc_lis_length(cluster, seq)
    summary = to_jsonable(cluster.stats.summary())
    restored = json.loads(json.dumps(summary))
    assert restored == summary
    assert restored["rounds"] == cluster.stats.num_rounds
    assert isinstance(restored["rounds"], int)
    assert isinstance(restored["space_utilisation"], float)


def test_to_jsonable_handles_numpy_scalars_and_arrays():
    import numpy as np

    doc = to_jsonable(
        {
            "i": np.int64(3),
            "f": np.float64(0.5),
            "b": np.bool_(True),
            "arr": np.arange(3),
            "nested": [np.int32(1), (np.float32(2.0),)],
        }
    )
    assert doc == {"i": 3, "f": 0.5, "b": True, "arr": [0, 1, 2], "nested": [1, [2.0]]}
    json.dumps(doc)


# ------------------------------------------------------------ JSON artifacts
def test_artifact_write_load_validate_roundtrip(tmp_path):
    result = run_experiment(get_spec("table1"), quick=True, overrides={"delta": [0.5]})
    path = tmp_path / "table1.json"
    written = write_artifact(result, str(path))
    loaded = load_artifact(str(path))
    assert loaded == json.loads(json.dumps(written))
    assert loaded["schema"] == SCHEMA_ID
    assert loaded["schema_version"] == SCHEMA_VERSION
    assert loaded["experiment"] == "table1"
    assert loaded["quick"] is True
    assert len(loaded["points"]) == len(result.points)


def test_validate_artifact_rejects_corrupt_documents():
    result = run_experiment(get_spec("lcs"), quick=True, overrides={"workload": ["random4"]})
    document = result_to_artifact(result)
    validate_artifact(document)

    for mutation in (
        lambda d: d.pop("points"),
        lambda d: d.__setitem__("schema", "something.else"),
        lambda d: d.__setitem__("schema_version", SCHEMA_VERSION + 1),
        lambda d: d.__setitem__("grid", {"workload": "not-a-list"}),
        lambda d: d["points"].append({"params": {}}),
    ):
        corrupt = json.loads(json.dumps(document))
        mutation(corrupt)
        with pytest.raises(ArtifactError):
            validate_artifact(corrupt)
    with pytest.raises(ArtifactError):
        validate_artifact([document])


# ------------------------------------------------- end-to-end / consistency
def test_table1_run_matches_direct_benchmark():
    result = run_experiment(get_spec("table1"), quick=True, overrides={"delta": [0.5]})
    fixed = result.fixed
    by_algorithm = {point.params["algorithm"]: point.metrics for point in result.points}

    cluster = MPCCluster(fixed["n"], delta=0.5)
    seq = make_sequence("random", fixed["n"], seed=fixed["seed"])
    mpc_lis_length(cluster, seq)
    assert by_algorithm["this_paper"]["rounds"] == cluster.stats.num_rounds
    assert by_algorithm["this_paper"]["answer"] == "exact"
    assert by_algorithm["kt10"]["scalable"] == "no (delta too large)"
    assert by_algorithm["kt10"]["rounds"] is None


def test_workers_fanout_matches_serial_run():
    serial = run_experiment(get_spec("lis_rounds"), quick=True, overrides={"n": [512]})
    parallel = run_experiment(
        get_spec("lis_rounds"), quick=True, overrides={"n": [512]}, workers=2
    )
    assert [point.params for point in serial.points] == [point.params for point in parallel.points]
    assert [point.metrics for point in serial.points] == [point.metrics for point in parallel.points]
    assert parallel.workers == 2


# ------------------------------------------------------------------- the CLI
def test_cli_list_shows_all_experiments(capsys):
    assert cli_main(["list"]) == 0
    captured = capsys.readouterr().out
    for name in spec_names():
        assert name in captured


def test_cli_list_json(capsys):
    assert cli_main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) >= 8
    assert {"name", "title", "claim", "points", "swept", "bench_file"} <= set(payload[0])


def test_cli_run_writes_validated_artifact(tmp_path, capsys):
    path = tmp_path / "out.json"
    code = cli_main(["run", "table1", "--quick", "--set", "delta=0.5", "--json", str(path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 1 reproduction" in out
    assert "consistency checks: passed" in out
    loaded = load_artifact(str(path))
    assert loaded["experiment"] == "table1"
    assert loaded["grid"]["delta"] == [0.5]
    assert cli_main(["validate", str(path)]) == 0


def test_cli_errors_are_reported_not_raised(tmp_path, capsys):
    assert cli_main(["run", "no_such_experiment"]) == 1
    assert cli_main(["run", "table1", "--quick", "--set", "bogus"]) == 1
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert cli_main(["validate", str(bad)]) == 1
    assert cli_main([]) == 2
