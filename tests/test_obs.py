"""Tests for the observability layer (:mod:`repro.obs`).

Covers the four surfaces the layer promises:

* metrics — a registry whose counters/histograms stay exact under thread
  contention, whose snapshots merge across processes without losing counts,
  and whose Prometheus text round-trips through the bundled parser;
* tracing — one ``POST /v2/batch`` through a 2-shard router yields a single
  trace covering edge → coalesce → route → worker → answer with consistent
  IDs and child spans inside their parents;
* reconciliation — per-shard counters on ``GET /metrics`` agree exactly
  with the ``/stats`` JSON (same underlying numbers, by construction);
* reporting — ``repro report`` renders every recorded artifact, the trend
  log and the capacity planner without matplotlib or any third-party dep.
"""

import json
import pickle
import threading
import urllib.request

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    histogram_quantile,
    log_buckets,
    merge_snapshots,
    parse_prometheus_text,
    relabel_snapshot,
    render_prometheus,
)
from repro.obs.trace import Tracer, current_trace_id, span


def _get_text(url, timeout=30.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read().decode("utf-8")


# ---------------------------------------------------------------- metrics
class TestRegistry:
    def test_counter_exact_under_thread_contention(self):
        registry = MetricsRegistry()
        counter = registry.counter("work_total", "units of work", labelnames=("kind",))
        hist = registry.histogram("work_seconds", "work latency")

        def hammer():
            for i in range(2000):
                counter.inc(kind="a" if i % 2 else "b")
                hist.observe(1e-4 * (i % 7 + 1))

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = registry.snapshot()
        samples = dict(
            (labels[0][1], value) for labels, value in snap["work_total"]["samples"]
        )
        assert samples == {"a": 8000.0, "b": 8000.0}
        (_, value), = snap["work_seconds"]["samples"]
        assert value["count"] == 16000
        assert sum(value["counts"]) == 16000

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_type_conflict_is_loud(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x")

    def test_snapshot_pickles_and_merges_across_processes(self):
        # A worker process ships its snapshot over a pipe (pickled); the
        # router merges it with its own.  Same math, no multiprocessing
        # needed to pin it.
        a = MetricsRegistry()
        b = MetricsRegistry()
        for registry, n in ((a, 3), (b, 5)):
            counter = registry.counter("requests_total", "reqs", labelnames=("route",))
            counter.inc(n, route="/v2/batch")
            registry.histogram("wait_seconds", "wait").observe(0.001 * n)
            registry.gauge("resident_bytes", "bytes").set(100 * n)
        remote = pickle.loads(pickle.dumps(b.snapshot()))
        merged = merge_snapshots(a.snapshot(), remote)
        (_, requests), = merged["requests_total"]["samples"]
        assert requests == 8.0
        (_, wait), = merged["wait_seconds"]["samples"]
        assert wait["count"] == 2 and wait["sum"] == pytest.approx(0.008)
        (_, resident), = merged["resident_bytes"]["samples"]
        assert resident == 800.0

    def test_relabel_stamps_every_series(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c", labelnames=("k",)).inc(k="v")
        snap = relabel_snapshot(registry.snapshot(), {"shard": "3"})
        (labels, _), = snap["c_total"]["samples"]
        assert ["shard", "3"] in [list(kv) for kv in labels]

    def test_collector_fragments_land_in_snapshot(self):
        from repro.obs.metrics import gauge_fragment

        registry = MetricsRegistry()
        registry.register_collector(
            lambda: gauge_fragment("derived_value", 7.0, "derived", labels={"who": "me"})
        )
        snap = registry.snapshot()
        (labels, value), = snap["derived_value"]["samples"]
        assert value == 7.0 and ("who", "me") in [tuple(kv) for kv in labels]


class TestHistogramMath:
    def test_log_buckets_shape(self):
        bounds = log_buckets(start=1e-3, factor=2.0, count=5)
        assert bounds == (1e-3, 2e-3, 4e-3, 8e-3, 16e-3)
        assert len(DEFAULT_TIME_BUCKETS) == 24

    def test_quantile_vs_numpy_within_bucket_error(self, rng):
        bounds = list(DEFAULT_TIME_BUCKETS)
        values = rng.exponential(scale=0.02, size=4000) + 1e-4
        counts = [0] * (len(bounds) + 1)
        for v in values:
            slot = int(np.searchsorted(bounds, v, side="left"))
            counts[slot] += 1
        for q in (0.5, 0.9, 0.95, 0.99):
            estimate = histogram_quantile(q, bounds, counts)
            exact = float(np.quantile(values, q))
            # The estimate must land inside the bucket containing the exact
            # quantile — that's the advertised "within one bucket" accuracy.
            slot = int(np.searchsorted(bounds, exact, side="left"))
            lo = bounds[slot - 1] if slot > 0 else 0.0
            hi = bounds[slot] if slot < len(bounds) else float("inf")
            assert lo <= estimate <= hi

    def test_quantile_edge_cases(self):
        assert histogram_quantile(0.5, [1.0, 2.0], [0, 0, 0]) == 0.0
        # All mass in +Inf bucket degrades to the last finite bound.
        assert histogram_quantile(0.5, [1.0, 2.0], [0, 0, 10]) == 2.0


class TestExposition:
    def test_render_parse_roundtrip_with_braces_in_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_http_requests_total", "requests", labelnames=("route", "status")
        )
        # Route templates contain literal braces — the parser must split on
        # the LAST '}' of the label block, not the first.
        counter.inc(4, route="/builds/{token}", status="200")
        registry.histogram("repro_wait_seconds", "wait", bounds=(0.1, 1.0)).observe(0.5)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_http_requests_total counter" in text
        parsed = parse_prometheus_text(text)
        series = parsed["repro_http_requests_total"]
        key = (("route", "/builds/{token}"), ("status", "200"))
        assert series[key] == 4.0
        buckets = parsed["repro_wait_seconds_bucket"]
        # Cumulative buckets: 0 below 0.1, 1 at le=1.0 and le=+Inf.
        assert buckets[(("le", "0.1"),)] == 0.0
        assert buckets[(("le", "1"),)] == 1.0
        assert buckets[(("le", "+Inf"),)] == 1.0
        assert parsed["repro_wait_seconds_count"][()] == 1.0


# ------------------------------------------------------------- percentiles
class TestLoadgenPercentiles:
    def test_percentile_linear_matches_numpy(self, rng):
        from repro.server.loadgen import percentile_linear

        for n in (1, 2, 7, 100, 999):
            values = rng.exponential(scale=3.0, size=n).tolist()
            for q in (0, 25, 50, 95, 99, 100):
                assert percentile_linear(values, q) == pytest.approx(
                    float(np.percentile(np.asarray(values), q)), abs=1e-12
                )

    def test_percentile_linear_rejects_bad_input(self):
        from repro.server.loadgen import percentile_linear

        with pytest.raises(ValueError):
            percentile_linear([], 50)
        with pytest.raises(ValueError):
            percentile_linear([1.0], 101)


# ---------------------------------------------------------------- tracing
class TestTracing:
    def test_span_is_noop_without_active_trace(self):
        assert current_trace_id() is None
        with span("orphan") as sp:
            assert sp is None

    def test_trace_tree_and_chrome_export(self):
        tracer = Tracer(capacity=4)
        with tracer.start_trace("edge", method="POST"):
            trace_id = current_trace_id()
            with span("coalesce", requests=2):
                with span("route"):
                    pass
            with span("answer"):
                pass
        assert len(trace_id) == 16
        (trace,) = tracer.completed()
        assert trace.trace_id == trace_id
        doc = trace.to_jsonable()
        by_name = {sp["name"]: sp for sp in doc["spans"]}
        assert set(by_name) == {"edge", "coalesce", "route", "answer"}
        assert by_name["edge"]["parent_id"] is None
        assert by_name["route"]["parent_id"] == by_name["coalesce"]["span_id"]
        assert by_name["answer"]["parent_id"] == by_name["edge"]["span_id"]
        chrome = trace.to_chrome()
        assert {ev["name"] for ev in chrome["traceEvents"]} == set(by_name)
        json.dumps(chrome)  # must be JSON-serializable as-is

    def test_ring_buffer_bounded(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            with tracer.start_trace("t", index=index):
                pass
        assert tracer.stats() == {
            "started": 5,
            "retained": 2,
            "capacity": 2,
            "sampled_total": 5,
            "dropped_total": 0,
        }


# ------------------------------------------- end-to-end server observability
@pytest.fixture(scope="module")
def sharded_server():
    from repro.server import start_server
    from repro.service import ShardRouter

    router = ShardRouter(2)
    handle = start_server(router, coalesce_seconds=0.001)
    yield handle
    handle.stop()


def _batch_document(seed):
    return {
        "requests": [
            {"op": "lis_length", "id": "a", "workload": "random", "n": 256, "seed": seed},
            {"op": "lis_length", "id": "b", "workload": "random", "n": 257, "seed": seed},
        ]
    }


class TestServerObservability:
    def test_trace_covers_edge_to_answer_across_shards(self, sharded_server):
        from repro.server import get_json, post_json

        status, _, body = post_json(
            sharded_server.url + "/v2/batch", _batch_document(3)
        )
        assert status == 200 and body["errors"] == 0
        trace_id = body["trace_id"]
        assert isinstance(trace_id, str) and len(trace_id) == 16

        status, _, doc = get_json(sharded_server.url + f"/debug/traces/{trace_id}")
        assert status == 200
        assert doc["trace_id"] == trace_id
        spans = doc["spans"]
        names = {sp["name"] for sp in spans}
        assert {"edge", "coalesce", "route", "worker", "answer"} <= names
        by_id = {sp["span_id"]: sp for sp in spans}
        (root,) = [sp for sp in spans if sp["parent_id"] is None]
        assert root["name"] == "edge"
        for sp in spans:
            assert sp["duration_s"] is not None and sp["duration_s"] >= 0
            if sp["parent_id"] is None:
                continue
            parent = by_id[sp["parent_id"]]
            # Child spans sit inside their parent's interval.
            assert sp["start_s"] >= parent["start_s"] - 1e-9
            assert (
                sp["start_s"] + sp["duration_s"]
                <= parent["start_s"] + parent["duration_s"] + 1e-9
            )
        # The two distinct targets hash to sub-batches; every worker span
        # names the shard it ran on.
        worker_shards = {
            sp["attrs"]["shard"] for sp in spans if sp["name"] == "worker"
        }
        assert worker_shards <= {0, 1} and worker_shards

        status, _, listing = get_json(sharded_server.url + "/debug/traces")
        assert status == 200
        assert trace_id in [entry["trace_id"] for entry in listing["traces"]]

        status, _, chrome = get_json(
            sharded_server.url + f"/debug/traces/{trace_id}?format=chrome"
        )
        assert status == 200
        assert {ev["name"] for ev in chrome["traceEvents"]} >= {"edge", "worker"}

    def test_metrics_exposition_and_stats_reconcile(self, sharded_server):
        from repro.server import get_json, post_json

        status, _, _ = post_json(sharded_server.url + "/v2/batch", _batch_document(4))
        assert status == 200
        status, headers, text = _get_text(sharded_server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        parsed = parse_prometheus_text(text)
        for name in (
            "repro_http_requests_total",
            "repro_http_request_seconds_count",
            "repro_server_passes_total",
            "repro_shard_requests_total",
            "repro_shard_pipe_seconds_count",
            "repro_server_uptime_seconds",
            "repro_build_info",
        ):
            assert name in parsed, f"missing series {name}"

        # Per-shard request counters on /metrics reconcile exactly with the
        # /stats JSON — both derive from the same router counters.
        _, _, stats = get_json(sharded_server.url + "/stats")
        per_shard = stats["service"]["load"]["per_shard_requests"]
        series = parsed["repro_shard_requests_total"]
        for shard_id, expected in enumerate(per_shard):
            assert series[(("shard", str(shard_id)),)] == float(expected)

        # Counters are monotone: another POST strictly grows the pass count.
        before = parsed["repro_server_passes_total"][()]
        status, _, _ = post_json(sharded_server.url + "/v2/batch", _batch_document(5))
        assert status == 200
        _, _, text = _get_text(sharded_server.url + "/metrics")
        after = parse_prometheus_text(text)["repro_server_passes_total"][()]
        assert after >= before + 1

    def test_healthz_and_stats_schema(self, sharded_server):
        import repro
        from repro.server import get_json

        status, _, health = get_json(sharded_server.url + "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["version"] == repro.__version__
        assert health["transport"] in ("asyncio", "thread")
        assert health["uptime_seconds"] > 0
        assert health["aiohttp_available"] is False

        status, _, stats = get_json(sharded_server.url + "/stats")
        assert status == 200
        assert stats["stats_schema"] == "repro.server.stats.v1"
        assert stats["version"] == 1


# --------------------------------------------------------------- reporting
class TestReport:
    def test_renders_every_recorded_artifact_without_matplotlib(self):
        import glob

        from repro.obs.report import matplotlib_available, render_report

        paths = sorted(glob.glob("results/*.json"))
        assert paths, "seed repo ships recorded artifacts"
        text = render_report(paths, trend_path="results/perf_trend.jsonl")
        # Plain printable text — every line terminal-renderable, no escape
        # codes, no graphics.
        assert all(ch.isprintable() or ch in "\n\t" for ch in text)
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                name = json.load(handle).get("experiment", "")
            if name:
                assert name in text
        # Report must not need matplotlib; this environment does not have it.
        if not matplotlib_available():
            out = render_report(paths[:1], plots_dir="/tmp/never-created-plots")
            assert "plots skipped" in out

    def test_capacity_plan_modes(self):
        from repro.obs.report import capacity_plan

        scaling_doc = {
            "experiment": "shard_scaling",
            "points": [
                {"params": {"shards": 1}, "metrics": {"qps": 1000.0, "cpu_count": 8}},
                {"params": {"shards": 4}, "metrics": {"qps": 3600.0, "cpu_count": 8}},
            ],
        }
        plan = capacity_plan([("s", scaling_doc)], target_qps=5000)
        assert plan["feasible"] is True
        assert plan["scaling_efficiency"] == pytest.approx(0.9)
        assert plan["recommended_shards"] == 6  # ceil(5000 / (1000 * 0.9))

        flat = {
            "experiment": "shard_scaling",
            "points": [
                {"params": {"shards": 1}, "metrics": {"qps": 1000.0, "cpu_count": 1}},
                {"params": {"shards": 4}, "metrics": {"qps": 400.0, "cpu_count": 1}},
            ],
        }
        plan = capacity_plan([("s", flat)], target_qps=5000)
        assert plan["feasible"] is False
        assert plan["recommended_shards"] is None
        assert any("no parallel speedup" in note for note in plan["notes"])

        plan = capacity_plan([], target_qps=10)
        assert plan["feasible"] is False

    def test_trend_record_load_roundtrip(self, tmp_path):
        from repro.perf.trend import load_trend, record_trend, trend_row

        document = {
            "experiment": "perf_core",
            "package_version": "1.7.0",
            "quick": True,
            "perf": {
                "calibration_seconds": 0.015,
                "multiply_speedup_vs_reference": 8.5,
            },
            "points": [
                {"params": {"case": "multiply_n256_h2"}, "metrics": {"normalized": 0.2}},
                {"params": {"case": "service_batch_n512"}, "metrics": {"normalized": 0.01}},
            ],
        }
        path = tmp_path / "trend.jsonl"
        row = record_trend(document, str(path), commit="abc1234")
        assert row["commit"] == "abc1234"
        record_trend(document, str(path), commit="def5678")
        rows = load_trend(str(path))
        assert [r["commit"] for r in rows] == ["abc1234", "def5678"]
        assert rows[0]["normalized"] == {
            "multiply_n256_h2": 0.2,
            "service_batch_n512": 0.01,
        }
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"schema": "wrong"}) + "\n")
        with pytest.raises(ValueError):
            load_trend(str(path))
        assert len(load_trend(str(path), strict=False)) == 2
        assert trend_row(document, commit="x")["quick"] is True
