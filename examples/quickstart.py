"""Quickstart: unit-Monge multiplication and LIS, sequentially and in MPC.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import multiply, random_permutation
from repro.lis import lis_length, lis_length_seaweed, value_interval_matrix
from repro.mpc import MPCCluster
from repro.mpc_monge import mpc_multiply
from repro.lis import mpc_lis_length


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. (sub)unit-Monge matrix multiplication -----------------------------
    n = 1000
    pa = random_permutation(n, rng)
    pb = random_permutation(n, rng)
    pc = multiply(pa, pb)
    print(f"P_A ⊡ P_B computed sequentially: {pc.num_nonzeros} nonzeros (n={n})")

    # The same product in the MPC simulator (Theorem 1.1), with accounting.
    cluster = MPCCluster(n, delta=0.5)
    pc_mpc = mpc_multiply(cluster, pa, pb)
    assert pc_mpc == pc
    print("MPC multiplication agrees with the sequential product")
    print(cluster.stats)

    # --- 2. Longest increasing subsequence ------------------------------------
    sequence = rng.permutation(5000)
    print(f"\nLIS (patience sorting)      = {lis_length(sequence)}")
    print(f"LIS (seaweed decomposition) = {lis_length_seaweed(sequence)}")

    lis_cluster = MPCCluster(len(sequence), delta=0.5)
    print(f"LIS (MPC, Theorem 1.3)      = {mpc_lis_length(lis_cluster, sequence)}")
    print(f"MPC rounds                  = {lis_cluster.stats.num_rounds}")

    # --- 3. Semi-local queries -------------------------------------------------
    semilocal = value_interval_matrix(rng.permutation(2000))
    print(
        "\nLIS restricted to the middle half of the value range:",
        semilocal.query_rank_interval(500, 1500),
    )


if __name__ == "__main__":
    main()
