"""Semi-local LIS (Corollary 1.3.2): answering many subsegment queries at once.

A monitoring scenario: given a long time-series, report the LIS of every
sliding window — a single semi-local matrix answers all of them without
recomputation, both sequentially and from the MPC pipeline.

Run with:  python examples/semilocal_queries.py
"""

import numpy as np

from repro.lis import lis_length, mpc_semilocal_lis, subsegment_matrix
from repro.mpc import MPCCluster
from repro.workloads import near_sorted_sequence


def main() -> None:
    n = 600
    series = near_sorted_sequence(n, swaps=80, seed=3)

    # Sequential construction.  One vectorised batch call answers every
    # sliding window (no per-query Python loop).
    semilocal = subsegment_matrix(series)
    window = 100
    starts = np.arange(0, n - window + 1, 50)
    lengths = semilocal.query_substrings(starts, starts + window)
    print(f"sliding-window (size {window}) LIS values: {lengths.tolist()}")

    # Spot-check two windows against direct computation.
    for start in (0, 250):
        direct = lis_length(series[start : start + window])
        assert semilocal.query_substring(start, start + window) == direct
    print("spot checks against patience sorting passed")

    # The same object computed by the MPC pipeline (Corollary 1.3.2).
    cluster = MPCCluster(n, delta=0.5)
    distributed = mpc_semilocal_lis(cluster, series)
    assert distributed.semilocal.matrix == semilocal.matrix
    print(
        f"MPC semi-local LIS: {cluster.stats.num_rounds} rounds, "
        f"peak machine load {cluster.stats.peak_machine_load}/{cluster.space_per_machine} words"
    )


if __name__ == "__main__":
    main()
