"""Exact LIS at cluster scale: the Theorem 1.3 pipeline with full accounting.

The scenario from the paper's introduction: a sequence too large for one
machine's memory, processed by m = n^δ machines with Õ(n^{1-δ}) memory each.
The example sweeps δ and compares against the prior-work baselines, printing a
Table-1-style summary.

Run with:  python examples/mpc_lis_pipeline.py
"""

from repro.analysis import format_table
from repro.baselines import chs23_lis_length, kt10_lis_length
from repro.lis import lis_length, mpc_lis_approx, mpc_lis_length
from repro.mpc import MPCCluster, ScalabilityError
from repro.workloads import planted_lis_sequence


def main() -> None:
    n = 8192
    sequence = planted_lis_sequence(n, lis_length=n // 4, seed=7)
    exact = lis_length(sequence)
    print(f"workload: planted-LIS permutation, n={n}, LIS={exact}\n")

    rows = []
    for delta in (0.25, 0.5, 0.75):
        cluster = MPCCluster(n, delta=delta)
        value = mpc_lis_length(cluster, sequence)
        rows.append(
            [
                f"this paper (delta={delta})",
                cluster.num_machines,
                cluster.space_per_machine,
                cluster.stats.num_rounds,
                cluster.stats.total_communication,
                "exact" if value == exact else "WRONG",
            ]
        )

    # Baselines at delta = 0.5 (KT10 refuses: not fully scalable).
    chs = MPCCluster(n, delta=0.5)
    chs23_lis_length(chs, sequence)
    rows.append(["CHS23-style (delta=0.5)", chs.num_machines, chs.space_per_machine,
                 chs.stats.num_rounds, chs.stats.total_communication, "exact"])
    try:
        kt10_lis_length(MPCCluster(n, delta=0.5), sequence)
    except ScalabilityError as error:
        rows.append(["KT10 (delta=0.5)", "-", "-", "-", "-", f"refused: {error}"])
    kt_cluster = MPCCluster(n, delta=0.25)
    kt10_lis_length(kt_cluster, sequence)
    rows.append(["KT10 (delta=0.25)", kt_cluster.num_machines, kt_cluster.space_per_machine,
                 kt_cluster.stats.num_rounds, kt_cluster.stats.total_communication, "exact"])
    approx_cluster = MPCCluster(n, delta=0.5)
    approx = mpc_lis_approx(approx_cluster, sequence, epsilon=0.1)
    rows.append(["IMS17-style (1+eps)", approx_cluster.num_machines,
                 approx_cluster.space_per_machine, approx_cluster.stats.num_rounds,
                 approx_cluster.stats.total_communication,
                 f"approx {approx.length}/{exact}"])

    print(format_table(
        ["algorithm", "machines", "space s", "rounds", "communication", "answer"], rows
    ))


if __name__ == "__main__":
    main()
