"""LCS of two mutated DNA-like strings via the Hunt–Szymanski reduction.

Corollary 1.3.1 of the paper: with enough total space for the matching pairs,
the LCS is computed in O(log n) MPC rounds.  The example aligns a string with
a mutated copy of itself and cross-checks against the quadratic DP.

Run with:  python examples/lcs_alignment.py
"""

from repro.analysis import format_table
from repro.lcs import (
    count_matches,
    lcs_cluster_for,
    lcs_length_dp,
    mpc_lcs_length,
    semilocal_lcs,
)
from repro.workloads import correlated_string_pair


def main() -> None:
    n = 400
    s, t = correlated_string_pair(n, alphabet=4, mutation_rate=0.15, seed=11)
    matches = count_matches(s, t)
    print(f"two DNA-like strings of length {n} (alphabet 4), {matches} matching pairs")

    cluster = lcs_cluster_for(len(s), len(t), matches)
    result = mpc_lcs_length(cluster, s, t)
    reference = lcs_length_dp(s, t)
    print(
        format_table(
            ["method", "LCS", "machines", "rounds"],
            [
                ["MPC Hunt-Szymanski + Theorem 1.3", result.length,
                 cluster.num_machines, cluster.stats.num_rounds],
                ["quadratic DP (oracle)", reference, 1, "-"],
            ],
        )
    )
    assert result.length == reference

    # Semi-local LCS (Corollary 1.3.3): LCS of S against every window of T.
    window = 100
    sl = semilocal_lcs(s, t)
    best = max(range(len(t) - window + 1), key=lambda i: sl.query(i, i + window))
    print(
        f"\nbest window of length {window} in T: starts at {best}, "
        f"LCS(S, T[{best}:{best + window}]) = {sl.query(best, best + window)}"
    )


if __name__ == "__main__":
    main()
