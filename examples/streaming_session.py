"""Streaming sessions: exact sliding-window LIS/LCS without rebuilds.

Run with::

    PYTHONPATH=src python examples/streaming_session.py

A :class:`repro.streaming.StreamingLIS` session maintains the semi-local
value-interval product of a sliding window by *recomposing* cached seaweed
block products (the ⊡ monoid of Theorem 1.3) instead of rebuilding: each
tick touches one leaf block plus an O(log n) node path, yet every answer is
exact — identical to rebuilding the product from scratch on the current
window.
"""

import numpy as np

from repro.lis import lis_length
from repro.streaming import StreamingLCS, StreamingLIS
from repro.workloads import make_sequence, make_string_pair

WINDOW = 512
SLIDE = 64
TICKS = 8


def lis_session() -> None:
    stream = make_sequence("random", WINDOW + TICKS * SLIDE, seed=7).astype(float)
    session = StreamingLIS(window=WINDOW, leaf_size=64)
    session.push(stream[:WINDOW])
    print(f"warm window of {WINDOW}: LIS = {session.lis_length()}")

    for tick in range(TICKS):
        lo = WINDOW + tick * SLIDE
        session.push(stream[lo : lo + SLIDE])  # slide by SLIDE symbols
        lis = session.lis_length()
        # Rank-window probes and full sweeps come from the same product.
        middle = session.rank_interval(WINDOW // 4, 3 * WINDOW // 4)
        assert lis == lis_length(session.window_values())  # exact, every tick
        print(f"tick {tick}: LIS={lis}  LIS(middle ranks)={middle}")

    sweep = session.window_sweep(width=128, step=64)
    print(f"rank-window sweep (width 128): {sweep.tolist()}")
    counters = session.counters()
    print(
        f"cost: {counters['multiplies']} multiplies, {counters['blocks_built']} block "
        f"builds, node store {counters['node_store']['nbytes']} bytes"
    )


def lcs_session() -> None:
    s, t = make_string_pair("correlated_pair", 256, seed=3, alphabet=8)
    session = StreamingLCS(s[:128], window=128, leaf_size=32)
    session.push(t[:128])
    print(f"\nLCS(S, T-window) = {session.lcs_length()}")
    for tick in range(4):
        session.push(t[128 + tick * 32 : 160 + tick * 32])
        print(f"tick {tick}: LCS={session.lcs_length()} (T window of {session.t_length})")
    print(f"T sub-window sweep (width 64): {session.window_sweep(64, 32).tolist()}")


if __name__ == "__main__":
    lis_session()
    lcs_session()
