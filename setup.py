"""Setuptools shim for legacy editable installs.

All metadata lives in ``pyproject.toml``.  This file only exists so that
``pip install -e . --no-use-pep517`` works on toolchains without the
``wheel`` package (PEP 660 editable installs need it); modern environments
can use a plain ``pip install -e .``.
"""

from setuptools import setup

setup()
